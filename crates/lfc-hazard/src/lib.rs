//! Hazard-pointer memory reclamation, after Michael,
//! *Hazard Pointers: Safe Memory Reclamation for Lock-Free Objects* (2004) —
//! the scheme the paper's objects and DCAS use (reference \[17\] in the paper).
//!
//! One process-global domain holds a fixed bank of hazard slots per
//! registered thread. Threads protect an allocation by publishing its base
//! address into one of their slots and re-validating the source pointer;
//! retired allocations are kept on per-thread lists and reclaimed by a scan
//! that frees everything no slot protects.
//!
//! # Slot convention
//!
//! The composition protocol needs several simultaneously live protections
//! per thread (paper §5: `hp1..hp4`, plus the descriptor hazard `hpd` used
//! by the `read` operation and the two adopted protections of DCAS lines
//! D2–D3). Fixed roles are assigned in [`slot`] so the layers never clobber
//! each other:
//!
//! * insert-side operation hazards: [`slot::INS0`]..[`slot::INS2`]
//! * remove-side operation hazards: [`slot::REM0`]..[`slot::REM2`]
//!   (insert and remove *must not share* hazard slots — paper requirement 2
//!   discussion: shared hazard pointers would let a move's insert overwrite
//!   its remove's protections. **Since PR 3 the in-tree structures protect
//!   traversal with epochs instead and no longer publish these roles**;
//!   they remain reserved for hazard-style move-ready objects — the
//!   protocol tests build such objects — and the requirement-2 slot
//!   disjointness now lives in the per-entry `ENTRY*` promotions)
//! * the descriptor hazard set by `read` before helping: [`slot::DESC`]
//! * the adopted protections of a helping DCAS (lines D2–D3):
//!   [`slot::HELP1`], [`slot::HELP2`]
//! * CASN helping protections (extension): [`slot::KCAS0`]..
//!
//! # Epoch-batched traversal protection (PR 3)
//!
//! Per-node hazard publication costs a store-load fence per pointer hop —
//! three orders of magnitude more than the 0.37 ns quiet-word load it
//! guards. Traversal therefore uses *epoch* protection (Brown's DEBRA /
//! Fraser-style EBR): a thread enters a cache-padded per-thread epoch slot
//! **once per operation** ([`pin_op`], one fence), walks any number of
//! nodes with plain acquire loads, and publishes per-node hazards only at
//! the handoff points the composition protocol requires — the captured
//! linearization entries (`ENTRY*`, promoted at capture time by the
//! engine), descriptors (`DESC`) and helper adoptions (`HELP*`/`KCAS*`),
//! which keep their slots and orderings untouched.
//!
//! # Retire contract (unified domain)
//!
//! Both regimes retire into one domain. `retire(p, f)` may be called once
//! the allocation has been unlinked such that
//!
//! * any traversal that *starts* (enters its epoch) after the retire cannot
//!   reach the allocation through the live structure, and
//! * any thread that later finds a stale pointer to it through shared
//!   memory and wants to dereference it under a *hazard* will fail its
//!   validation step (set slot, re-read source, compare).
//!
//! The record is tagged by the first scan that sees it — with the
//! **maximum** of that scan's post-fence read of the global epoch and every
//! entry epoch its reader sweep observed. The max closes a stale-read hole:
//! an unrelated scan can advance the epoch just before the unlink with
//! nothing ordering the tagging scan's read after that advance, so the read
//! alone may come back stale; an active reader *above* it proves the
//! staleness, and every reader that could still hold a pre-unlink path is
//! visible to the sweep by the SC fence-fence rule (see
//! `collect_protection`). A scan frees the record only when **both**
//! conditions hold: the tag is older than every active reader's entry epoch
//! (so no in-flight traversal can still hold a pre-unlink pointer), **and**
//! no hazard slot protects the block (so a
//! node pinned by an in-flight move/CASN — an `ENTRY*`/`HELP*` slot —
//! survives even after all epochs quiesce). The DCAS protocol preserves the
//! hazard half exactly as before: descriptors are retired only after the
//! operation is decided and the initiating side's word has been swung, and
//! every helper removes its own stale marked descriptor before clearing the
//! hazard that protects it (see `lfc-dcas`).
//!
//! # Stall robustness: eras and ejection (PR 6)
//!
//! Epoch protection has a classic failure mode: one descheduled reader pins
//! its entry epoch forever and everything retired after it accumulates
//! without bound. The domain therefore carries a robustness tier
//! (see DESIGN.md "Reclamation regimes" for the proofs):
//!
//! * **Birth eras.** [`retire_with`] annotates a record with the era the
//!   allocation was *born* in ([`birth_era`], stamped before publication).
//!   A record born after a stalled reader's entry era is provably
//!   unreachable by that reader, so its garbage never charges to the stall.
//! * **Ejection (R1).** When a reader's pinned era lags more than the
//!   configured [`StallPolicy::stall_eras`] behind *and* retired garbage
//!   exceeds the byte/count budget, a scan CAS-marks the laggard's epoch
//!   slot with an ejection bit. The mark changes nothing about safety — an
//!   ejected slot still gates reclamation exactly like an active one — it
//!   is a *request*: the owner detects it at its next operation boundary
//!   ([`OpGuard::repin_if_ejected`]), drops the epoch (the acknowledgement)
//!   and restarts the operation under a fresh era instead of trusting
//!   protection it is about to lose. Captured words survive restarts via
//!   their `ENTRY*` hazard promotions, which ejection never touches.
//! * **Zombie tier (R2).** If the mark goes unacknowledged for
//!   [`StallPolicy::grace_eras`] more eras the slot is promoted to a
//!   *zombie* and stops gating the epoch condition. Records the zombie
//!   could still reach (tag ≥ its entry era) are then partitioned by birth
//!   era: born after the ejection era ⇒ freed normally (the stall cannot
//!   have captured a path to them); born before ⇒ *diverted* into
//!   type-stable limbo (the pool's size class is returned without running
//!   drop glue, so a reader that violates the park assumption and issues
//!   one more read lands on mapped pooled memory, never on unmapped or
//!   recycled-into-another-type bytes — VBR-style defense in depth); no
//!   divert function ⇒ retained (legacy [`retire`] callers keep full
//!   safety, at the cost of the bound). The set born before ejection is
//!   fixed at ejection time, so diverted leakage is bounded per stall.

#![warn(missing_docs)]

use crate::sync::{fence, AtomicPtr, AtomicUsize, Ordering};
use lfc_runtime::{
    current_tid, on_thread_exit, registered_high_water, thread_is_exiting, CachePadded, MAX_THREADS,
};
use std::cell::Cell;
use std::collections::HashSet;

#[doc(hidden)]
pub mod sync;

/// Test-only toggles, available only under `--cfg lfc_model`: the model
/// checker's adversarial acceptance tests re-open fixed bugs behind these
/// switches and assert the bounded explorer rediscovers them.
#[cfg(lfc_model)]
pub mod model_toggles {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Revert the PR 3 stale-tag fix: when set, a scan tags untagged
    /// retire records with its post-fence global-epoch read **alone**,
    /// without folding in the entry epochs its reader sweep observed. An
    /// unrelated advance just before the unlink can then leave the tag one
    /// generation stale and a pre-unlink reader gets freed under — the
    /// use-after-free the PR 3 review fix closed.
    pub static STALE_TAG_BUG: AtomicBool = AtomicBool::new(false);

    pub(crate) fn stale_tag_bug() -> bool {
        STALE_TAG_BUG.load(Ordering::Relaxed)
    }

    /// Disable the ejection-detection restart: when set,
    /// `OpGuard::repin_if_ejected` reports "not ejected" even when the
    /// thread's slot carries the mark, so an ejected reader keeps trusting
    /// protection the zombie tier has already stopped honouring. The model
    /// ejection scenarios assert the checker catches the resulting
    /// use-after-free (the diverted block is quarantined under the model).
    pub static SKIP_EJECT_RESTART: AtomicBool = AtomicBool::new(false);

    pub(crate) fn skip_eject_restart() -> bool {
        SKIP_EJECT_RESTART.load(Ordering::Relaxed)
    }
}

/// Named hazard-slot indices (roles) within a thread's slot bank.
pub mod slot {
    /// First insert-side operation hazard (paper `hp1`).
    pub const INS0: usize = 0;
    /// Second insert-side operation hazard (paper `hp2`).
    pub const INS1: usize = 1;
    /// Third insert-side hazard (keyed structures need prev/curr/next).
    pub const INS2: usize = 2;
    /// First remove-side operation hazard (paper `hp3`).
    pub const REM0: usize = 3;
    /// Second remove-side operation hazard (paper `hp4`).
    pub const REM1: usize = 4;
    /// Third remove-side hazard (keyed structures).
    pub const REM2: usize = 5;
    /// Descriptor hazard set by the `read` operation before helping
    /// (the paper's `hpd`, line D35).
    pub const DESC: usize = 6;
    /// Helper-adopted protection of the word-1 allocation (line D3).
    pub const HELP1: usize = 7;
    /// Helper-adopted protection of the word-2 allocation (line D3).
    pub const HELP2: usize = 8;
    /// Base of the CASN helper protections (extension; one per entry).
    pub const KCAS0: usize = 9;
    /// Number of CASN helper slots.
    pub const KCAS_COUNT: usize = 7;
    /// Base of the composition engine's per-entry protections: at capture
    /// time the engine *promotes* each captured entry's allocation from
    /// the capturing operation's epoch into its own ENTRY slot
    /// (unconditionally since PR 3 — the nested operations' epochs end
    /// when they return, before the commit's descriptor teardown and
    /// `finish` run), keeping every entry word protected until the
    /// composition resolves. One slot per entry also keeps nested
    /// same-role stages from clobbering each other's protections.
    /// Disjoint from the KCAS* range: ENTRY slots belong to the
    /// *initiating* thread's composition, KCAS* to the same thread's
    /// *helping* of foreign CASNs (a `read` inside a nested operation can
    /// help a foreign CASN mid-composition).
    pub const ENTRY0: usize = 16;
    /// Number of engine entry slots (one per possible CASN entry).
    pub const ENTRY_COUNT: usize = 6;
    /// The batched-composition claim protection (PR 7): a submitter parks
    /// its request node's base address here for the whole submit — push,
    /// result spin-wait, helping — so the node survives even if the
    /// submitter is ejected and zombified while waiting (named hazards are
    /// immune to the zombie tier's birth-era partition, unlike epochs).
    /// The batch drainer that clears a batch retires its nodes; a waiter's
    /// CLAIM slot is what makes its final result-word read safe after that.
    pub const CLAIM: usize = 22;
    /// The elimination exchanger's camp protection (PR 7): a pusher parks
    /// its offered node's address here for as long as it camps on an
    /// exchanger slot. A claimed offer is *retired* (never freed
    /// directly), so this hazard is what closes the ABA window — the
    /// node's address cannot be recycled into a fresh offer the camping
    /// pusher's withdraw CAS could steal (see `lfc-structures::elim`).
    pub const ELIM: usize = 23;
}

/// Hazard slots per registered thread.
pub const SLOTS_PER_THREAD: usize = 24;

/// One thread's hazard slots, cache-line padded: before padding,
/// neighbouring threads' banks shared lines in one flat array and every
/// hazard publication invalidated other threads' cached banks. The
/// alignment keeps each bank on its own aligned prefetch-pairs of lines
/// (`24 × 8 = 192` bytes, padded to 256 by the alignment). Since PR 3 the
/// hot writers are the `ENTRY*` promotions (every composed capture), the
/// `DESC`/`HELP*`/`KCAS*` helper slots, and any hazard-style object's
/// INS*/REM* roles.
#[repr(align(128))]
struct SlotBank {
    slots: [AtomicUsize; SLOTS_PER_THREAD],
}

static SLOTS: [SlotBank; MAX_THREADS] = [const {
    SlotBank {
        slots: [const { AtomicUsize::new(0) }; SLOTS_PER_THREAD],
    }
}; MAX_THREADS];

/// One thread's epoch state, cache-line padded: `epoch` is scanned by
/// reclaiming threads, `nest` is owner-only (operations nest — a composed
/// move runs an insert inside its remove — and only the outermost
/// enter/exit touches the published epoch).
#[repr(align(128))]
struct EpochSlot {
    /// 0 = quiescent; otherwise the global epoch this thread's outermost
    /// in-flight operation entered at.
    epoch: AtomicUsize,
    /// Operation nesting depth. Owner-written only (Relaxed); shares the
    /// bank's line because every writer of `nest` is about to touch `epoch`
    /// anyway.
    nest: AtomicUsize,
}

static EPOCHS: [EpochSlot; MAX_THREADS] = [const {
    EpochSlot {
        epoch: AtomicUsize::new(0),
        nest: AtomicUsize::new(0),
    }
}; MAX_THREADS];

/// The global epoch. Starts at 1 so a zero epoch slot always means
/// "quiescent". Monotonically increasing; advanced by reclamation scans
/// (and by [`advance_epoch`] in tests). Padded: read on every operation
/// entry, written only on the cold scan path.
static GLOBAL_EPOCH: CachePadded<AtomicUsize> = CachePadded::new(AtomicUsize::new(1));

/// Ejection request mark (R1) on an epoch slot: set by a scan, detected and
/// acknowledged by the owner. An `EJ`-marked slot still gates reclamation.
const EJ_BIT: usize = 1 << (usize::BITS - 1);
/// Zombie mark (R2): an unacknowledged ejection past the grace window. A
/// `Z`-marked slot no longer gates the epoch condition; records it could
/// reach go through the birth-era partition instead.
const Z_BIT: usize = 1 << (usize::BITS - 2);
/// Era payload of an epoch-slot word (the global epoch never reaches
/// 2^62, so the two mark bits can never collide with an era value).
const ERA_MASK: usize = Z_BIT - 1;

/// The era a scan last ejected each thread at: `fetch_max`ed *before* the
/// ejection CAS, read when promoting to zombie and when partitioning
/// zombie-pinned records by birth era. Monotone, so a stale value from a
/// lost ejection race or an earlier episode only ever widens the diverted
/// set (the conservative direction). Indexed by dense thread id.
static EJECT_ERA: [AtomicUsize; MAX_THREADS] = [const { AtomicUsize::new(0) }; MAX_THREADS];

/// Stall-robustness knobs (see the crate docs and DESIGN.md). Process
/// global; read once per scan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StallPolicy {
    /// Eras a reader's pinned entry may lag the current era before it is a
    /// candidate for ejection.
    pub stall_eras: usize,
    /// Eras an ejection mark may go unacknowledged before the slot is
    /// promoted to a zombie.
    pub grace_eras: usize,
    /// Retired-but-unreclaimed bytes that arm the ejection path (no reader
    /// is ever ejected while garbage is under budget).
    pub max_retired_bytes: usize,
    /// Retired-but-unreclaimed record count that arms the ejection path.
    pub max_retired_count: usize,
}

impl StallPolicy {
    /// Generous defaults: ejection stays dormant unless a reader stalls for
    /// a long time *while* garbage genuinely piles up.
    pub const DEFAULT: StallPolicy = StallPolicy {
        stall_eras: 64,
        grace_eras: 64,
        max_retired_bytes: 256 << 20,
        max_retired_count: 1 << 20,
    };
}

static POL_STALL_ERAS: AtomicUsize = AtomicUsize::new(StallPolicy::DEFAULT.stall_eras);
static POL_GRACE_ERAS: AtomicUsize = AtomicUsize::new(StallPolicy::DEFAULT.grace_eras);
static POL_MAX_BYTES: AtomicUsize = AtomicUsize::new(StallPolicy::DEFAULT.max_retired_bytes);
static POL_MAX_COUNT: AtomicUsize = AtomicUsize::new(StallPolicy::DEFAULT.max_retired_count);

/// Install a new process-global [`StallPolicy`]. Takes effect from the next
/// scan; safe to call at any time (the ejection machinery re-derives its
/// decisions from scratch every scan).
pub fn configure_stall_policy(p: StallPolicy) {
    POL_STALL_ERAS.store(p.stall_eras.max(1), Ordering::Relaxed);
    POL_GRACE_ERAS.store(p.grace_eras.max(1), Ordering::Relaxed);
    POL_MAX_BYTES.store(p.max_retired_bytes, Ordering::Relaxed);
    POL_MAX_COUNT.store(p.max_retired_count, Ordering::Relaxed);
}

/// The currently installed [`StallPolicy`].
pub fn stall_policy() -> StallPolicy {
    StallPolicy {
        stall_eras: POL_STALL_ERAS.load(Ordering::Relaxed),
        grace_eras: POL_GRACE_ERAS.load(Ordering::Relaxed),
        max_retired_bytes: POL_MAX_BYTES.load(Ordering::Relaxed),
        max_retired_count: POL_MAX_COUNT.load(Ordering::Relaxed),
    }
}

/// Total allocations handed to [`retire`]. Padded: bumped on every retire
/// by every thread; must not share a line with `RECLAIMED_TOTAL` (bumped in
/// scans) or the orphan head.
static RETIRED_TOTAL: CachePadded<AtomicUsize> = CachePadded::new(AtomicUsize::new(0));
/// Total retired allocations whose reclaimer has run. Padded as above.
static RECLAIMED_TOTAL: CachePadded<AtomicUsize> = CachePadded::new(AtomicUsize::new(0));
/// Total reclamation scans run (diagnostics; the adaptive-threshold test
/// asserts scan counts stay logarithmic under pinned retire bursts).
static SCANS_TOTAL: CachePadded<AtomicUsize> = CachePadded::new(AtomicUsize::new(0));
/// Bytes sitting in retired-but-unreclaimed records (as reported to
/// [`retire_with`]; legacy [`retire`] records count 0). Published at scan
/// granularity, not per retire: each thread accumulates into its
/// [`ThreadReclaim::bytes_unpublished`] (a plain field — the retire fast
/// path stays RMW-free) and folds the delta in here right before it scans,
/// then subtracts what the scan freed in one batch. The global value
/// therefore lags reality by at most one scan window of retires per
/// thread — slack the byte budget absorbs (pressure engages a window
/// late, the conservative direction for ejection; the stall adversary
/// reads this after `flush`, which publishes).
static RETIRED_BYTES: CachePadded<AtomicUsize> = CachePadded::new(AtomicUsize::new(0));
/// Total records diverted into type-stable limbo instead of reclaimed
/// (their drop glue never runs; the block itself returned to the pool).
static DIVERTED_TOTAL: CachePadded<AtomicUsize> = CachePadded::new(AtomicUsize::new(0));
/// Total ejection marks successfully installed (diagnostics/tests).
static EJECTIONS_TOTAL: AtomicUsize = AtomicUsize::new(0);
/// Total zombie promotions (diagnostics/tests).
static ZOMBIES_TOTAL: AtomicUsize = AtomicUsize::new(0);

/// Retire volume at the last ungated era advance (see `collect_protection`:
/// the era clock must keep ticking while a laggard blocks the gated
/// advance, otherwise lag can never exceed `stall_eras`).
#[cfg(not(lfc_model))]
static ERA_TICK: AtomicUsize = AtomicUsize::new(0);
/// Retires between ungated era advances (≈ one era per base scan batch).
#[cfg(not(lfc_model))]
const ERA_RETIRE_QUANTUM: usize = 128;

/// Tag of a retired record no scan has seen yet. Tagging happens on the
/// *scan* side (after the scan's SC fence), not at retire time, so the hot
/// retire path pays no fence and no shared-epoch cache line.
const UNTAGGED: usize = usize::MAX;

/// A retired allocation awaiting reclamation.
struct Retired {
    ptr: *mut u8,
    reclaim: unsafe fn(*mut u8),
    /// [`UNTAGGED`] until the first scan sees the record; then the max of
    /// the global epoch that scan read after its fence and every entry
    /// epoch its reader sweep observed. A reader whose entry epoch is
    /// *greater* than the tag provably fenced after the tagging scan's
    /// fence (had it fenced before, the sweep would have seen its epoch
    /// and the tag would dominate it), therefore after the unlink, and
    /// cannot hold a path to the block.
    epoch: usize,
    /// Allocation size for the garbage-bytes budget (0 for legacy records).
    bytes: usize,
    /// Era the allocation was born in ([`BIRTH_UNKNOWN`] for legacy
    /// records): the zombie partition's evidence that a stalled reader
    /// cannot reach the block.
    birth: usize,
    /// Type-stable fallback free: returns the block to its pool *without*
    /// running drop glue. `None` (legacy) means zombie-pinned records are
    /// retained instead of diverted.
    divert: Option<unsafe fn(*mut u8)>,
}

// Retired pointers are only dereferenced by their reclaimer; moving the
// records between threads (orphan list) is safe because reclamation runs at
// most once and the pointee is unreachable except through this record.
unsafe impl Send for Retired {}

/// A batch of retired records abandoned by an exiting thread, linked into
/// the lock-free orphan stack.
struct OrphanBatch {
    items: Vec<Retired>,
    next: *mut OrphanBatch,
}

/// Retire batches abandoned by exited threads; adopted wholesale by the
/// next scan. A Treiber stack of whole batches instead of the former
/// `Mutex<Vec<_>>`: thread exit publishes its entire leftover list with one
/// CAS, and adoption detaches the whole stack with one `swap` — no lock,
/// no ABA (nodes are only ever popped all-at-once). Padded: the head is
/// written by every exiting thread and every scanning thread.
static ORPHANS: CachePadded<AtomicPtr<OrphanBatch>> =
    CachePadded::new(AtomicPtr::new(std::ptr::null_mut()));

/// Push a batch of orphaned retirees (no-op for an empty batch).
fn orphans_push(items: Vec<Retired>) {
    if items.is_empty() {
        return;
    }
    let node = Box::into_raw(Box::new(OrphanBatch {
        items,
        next: std::ptr::null_mut(),
    }));
    // Acquire on failure/entry is not needed (we never read through `head`
    // before publishing); Release on success publishes `items` to adopters.
    let mut head = ORPHANS.load(Ordering::Relaxed);
    loop {
        // Safety: `node` is exclusively ours until the CAS succeeds.
        unsafe { (*node).next = head };
        match ORPHANS.compare_exchange_weak(head, node, Ordering::Release, Ordering::Relaxed) {
            Ok(_) => return,
            Err(h) => head = h,
        }
    }
}

/// Detach and drain every orphan batch into `list`. One atomic `swap`; the
/// detached chain is exclusively owned, so no ABA hazard exists.
fn orphans_adopt(list: &mut Vec<Retired>) {
    // Acquire pairs with the Release push: the batch contents are visible.
    let mut node = ORPHANS.swap(std::ptr::null_mut(), Ordering::Acquire);
    while !node.is_null() {
        // Safety: the swap made the whole chain exclusively ours.
        let mut batch = unsafe { Box::from_raw(node) };
        list.append(&mut batch.items);
        node = batch.next;
    }
}

struct ThreadReclaim {
    pending: Vec<Retired>,
    /// Pending-list length that re-arms the next threshold scan: the max of
    /// the base threshold and **twice the survivors of the last scan**,
    /// retention-capped (adaptive, PR 5; see [`rearm_scan`]). A fixed
    /// trigger is pathological under retire bursts whose records stay
    /// pinned (a resize/teardown retiring thousands of dummies and
    /// segments while a reader's epoch parks them): every `base` retires
    /// would pay a full O(pending) scan, O(pending²/base) in total.
    /// Re-arming at 2× the surviving count makes consecutive scans
    /// geometric in the live retired-record count — amortized O(1) scan
    /// work per retire — while an empty survivor set falls back to the
    /// base threshold unchanged.
    next_scan: usize,
    /// Bytes retired by this thread since it last published into
    /// [`RETIRED_BYTES`] (see the doc there): folded in by
    /// [`publish_and_scan`], so the retire fast path is a plain add.
    bytes_unpublished: usize,
}

thread_local! {
    static RECLAIM: Cell<*mut ThreadReclaim> = const { Cell::new(std::ptr::null_mut()) };
}

fn with_reclaim<R>(f: impl FnOnce(&mut ThreadReclaim) -> R) -> R {
    RECLAIM.with(|cell| {
        let mut p = cell.get();
        if p.is_null() {
            p = Box::into_raw(Box::new(ThreadReclaim {
                pending: Vec::new(),
                next_scan: 0,
                bytes_unpublished: 0,
            }));
            cell.set(p);
            // Tear down *before* the thread id is released (lfc-runtime runs
            // hooks ahead of freeing the id), so the slot bank cannot be
            // adopted by a new thread while we still use it.
            on_thread_exit(Box::new(move || {
                RECLAIM.with(|c| c.set(std::ptr::null_mut()));
                // Safety: pointer was uniquely created above; hook runs once.
                let mut tr = unsafe { Box::from_raw(p) };
                // One last scan attempt, then park leftovers on the orphan
                // stack as a single batch (one CAS, however many remain).
                // Publish first: the leftovers' bytes must be globally
                // visible before another thread can adopt and free them.
                if tr.bytes_unpublished != 0 {
                    RETIRED_BYTES.fetch_add(tr.bytes_unpublished, Ordering::Relaxed);
                    tr.bytes_unpublished = 0;
                }
                scan_list(&mut tr.pending);
                orphans_push(std::mem::take(&mut tr.pending));
            }));
        }
        // Safety: exclusive to this thread; never aliased across the closure.
        f(unsafe { &mut *p })
    })
}

/// A cheap per-thread handle to the hazard domain.
///
/// `Guard` is `Copy`; it does not clear slots on drop. Operations own fixed
/// slot roles (see [`slot`]) and clear them explicitly.
#[derive(Clone, Copy, Debug)]
pub struct Guard {
    tid: u16,
}

/// Process-wide registration of [`clear_bank`] as a tid finalizer: runs
/// when a thread's dense id is released — TLS teardown (including threads
/// that never called `detach_thread`) and dead-thread adoption
/// (`lfc_runtime::fault`) both funnel through it — so a reused id never
/// inherits its predecessor's hazard slots or epoch marks.
static BANK_FINALIZER: std::sync::Once = std::sync::Once::new();

/// Reset thread `tid`'s hazard-slot bank and epoch slot to the pristine
/// state a freshly claimed id expects.
///
/// Called only once `tid`'s owner can issue no further protected reads:
/// its TLS destructors have run (clean exit), or its announced operation
/// has been helped to completion and its corpse claimed (adoption). At
/// that point dropping the protections is exactly what reclamation wants —
/// in particular a `Z`-marked (zombified) epoch slot stops diverting
/// retires into type-stable limbo. `EJECT_ERA` is deliberately *not*
/// reset: it is monotone, and a stale value only widens the diverted set
/// (the conservative direction) for a future occupant of the id.
fn clear_bank(tid: u16) {
    for s in &SLOTS[tid as usize].slots {
        // Release, as the owner's own `Guard::clear`: ordered after the
        // (now finished) thread's final reads; a scanner acquiring the
        // clear may then reclaim.
        s.store(0, Ordering::Release);
    }
    EPOCHS[tid as usize].nest.store(0, Ordering::Relaxed);
    EPOCHS[tid as usize].epoch.store(0, Ordering::Release);
}

/// Whether thread `tid`'s hazard bank and epoch slot are fully clear
/// (diagnostics: the thread-churn and adoption tests assert released ids
/// are handed over pristine).
pub fn bank_is_clear(tid: u16) -> bool {
    SLOTS[tid as usize]
        .slots
        .iter()
        .all(|s| s.load(Ordering::Acquire) == 0)
        && EPOCHS[tid as usize].epoch.load(Ordering::Acquire) == 0
        && EPOCHS[tid as usize].nest.load(Ordering::Relaxed) == 0
}

/// Obtain the current thread's guard, registering the thread on first use.
#[inline]
pub fn pin() -> Guard {
    BANK_FINALIZER.call_once(|| lfc_runtime::register_tid_finalizer(clear_bank));
    Guard { tid: current_tid() }
}

impl Guard {
    /// This thread's dense id (used for descriptor marking).
    pub fn tid(&self) -> u16 {
        self.tid
    }

    #[inline]
    fn slot_ref(&self, idx: usize) -> &'static AtomicUsize {
        debug_assert!(idx < SLOTS_PER_THREAD);
        &SLOTS[self.tid as usize].slots[idx]
    }

    /// Publish `addr` in slot `idx`.
    ///
    /// SeqCst (audited, required): this store and the caller's subsequent
    /// validation load form the Michael-algorithm Dekker pair against a
    /// scanner's (collect → free) sequence. Release would allow the
    /// validation load to be satisfied before the slot store is visible,
    /// and a concurrent scan could then miss the protection and free the
    /// allocation under the reader.
    #[inline]
    pub fn set(&self, idx: usize, addr: usize) {
        self.slot_ref(idx).store(addr, Ordering::SeqCst);
    }

    /// Publish `addr` in slot `idx` as a *promotion* from an existing
    /// protection: the caller must already hold the allocation live — via
    /// an active epoch that reached it, or a borrow — when the store
    /// executes.
    ///
    /// Release (audited, relaxed from the `set` SeqCst): no Dekker
    /// validation follows a promotion, so the store-load fence `set` pays
    /// for is pure waste here. Safety needs only that a scan which could
    /// free the block sees the slot: while the covering epoch is active the
    /// epoch condition keeps the block regardless, and a scan that instead
    /// observes the epoch's Release *exit* acquires it (scans sweep epochs
    /// before hazards) — which makes this store, sequenced before the
    /// exit, visible to the scan's hazard sweep. Borrow-covered
    /// allocations (structure headers) outlive the slot's whole set/clear
    /// window anyway.
    #[inline]
    pub fn promote(&self, idx: usize, addr: usize) {
        self.slot_ref(idx).store(addr, Ordering::Release);
    }

    /// Clear slot `idx`.
    ///
    /// Release (relaxed from SeqCst): clearing only *ends* a protection. It
    /// must be ordered after our final reads of the protected allocation —
    /// release gives exactly that — but needs no store-load fence: seeing
    /// the clear "late" merely delays reclamation, and a scanner that sees
    /// it early synchronizes-with this store before freeing. On x86 this
    /// turns an `mfence`/`xchg` into a plain store on one of the hottest
    /// paths in the system (every structure operation clears its slots).
    #[inline]
    pub fn clear(&self, idx: usize) {
        self.slot_ref(idx).store(0, Ordering::Release);
    }

    /// Current value of slot `idx` (diagnostics/tests). Acquire: pairs with
    /// `set`/`clear`; diagnostics never race reclamation decisions.
    pub fn get(&self, idx: usize) -> usize {
        self.slot_ref(idx).load(Ordering::Acquire)
    }

    /// Whether this thread's epoch slot currently carries an ejection or
    /// zombie mark (diagnostics; operations restart through
    /// [`OpGuard::repin_if_ejected`]).
    ///
    /// Relaxed (audited): detection is liveness, not safety — an R1 mark
    /// still gates reclamation, and the R2 regime's safety rests on the
    /// resume happens-before (DESIGN.md), which any later acquire on the
    /// wake path establishes before the owner can act on stale pointers.
    /// The restart path itself re-enters through the full `pin_op` fence.
    #[inline]
    pub fn ejected(&self) -> bool {
        EPOCHS[self.tid as usize].epoch.load(Ordering::Relaxed) & (EJ_BIT | Z_BIT) != 0
    }

    /// Set-and-validate loop: publishes the value returned by `load`, then
    /// re-runs `load` until it observes the same value, guaranteeing the
    /// protection was visible before the allocation could have been freed.
    #[inline]
    pub fn protect(&self, idx: usize, load: impl Fn() -> usize) -> usize {
        let mut cur = load();
        loop {
            self.set(idx, cur);
            let again = load();
            if again == cur {
                return cur;
            }
            cur = again;
        }
    }
}

/// An operation-scoped guard: a [`Guard`] plus an entered epoch.
///
/// Created by [`pin_op`] at the top of every structure operation. While it
/// lives, every allocation that was reachable through the structures at (or
/// after) the enter fence stays unreclaimed, so traversal dereferences
/// plain loads without per-node hazard publication. Nested operations (a
/// composed move runs its insert inside its remove) share the outermost
/// entry epoch through a nesting counter, so only the outermost operation
/// pays the fence.
///
/// Dropping the guard exits the epoch; protection then falls back to
/// whatever hazard slots are still published (e.g. the composition engine's
/// `ENTRY*` promotions, which outlive the nested operations' epochs).
#[derive(Debug)]
pub struct OpGuard {
    g: Guard,
    /// `!Send + !Sync`: the guard manipulates its *creating* thread's
    /// epoch slot with owner-only (non-atomic-RMW) accesses; dropping it
    /// from another thread would race the origin thread's own nesting
    /// updates and could clear an epoch that is still protecting a walk.
    _not_send: std::marker::PhantomData<*mut ()>,
}

impl std::ops::Deref for OpGuard {
    type Target = Guard;
    fn deref(&self) -> &Guard {
        &self.g
    }
}

/// Enter the current thread's epoch (outermost entry only pays the fence)
/// and return the operation guard.
#[inline]
pub fn pin_op() -> OpGuard {
    let g = pin();
    let slot = &EPOCHS[g.tid as usize];
    // `nest` is owner-only: Relaxed loads/stores, no RMW needed.
    let n = slot.nest.load(Ordering::Relaxed);
    slot.nest.store(n + 1, Ordering::Relaxed);
    if n == 0 {
        enter_epoch(slot);
    }
    OpGuard {
        g,
        _not_send: std::marker::PhantomData,
    }
}

/// Publish a fresh entry era in `slot` and validate it against the global
/// epoch (the outermost half of [`pin_op`], shared with the ejection
/// restart path). The owner's stores here overwrite any ejection mark a
/// scan raced onto the slot's previous value: benign — a freshly validated
/// entry is at the current era, i.e. not lagging, and the scanner's
/// mark/promote CASes fail on the changed value.
#[inline]
fn enter_epoch(slot: &EpochSlot) {
    {
        let mut e = GLOBAL_EPOCH.load(Ordering::Relaxed);
        loop {
            slot.epoch.store(e, Ordering::Relaxed);
            // SeqCst fence (audited, required): THE once-per-operation
            // fence, and the reader's entire safety obligation. The epoch
            // store above is sequenced before it, so for any scan: either
            // this fence precedes the scan's fence in the SC order — then
            // by the SC fence-fence rule the scan's reader sweep observes
            // our published epoch (or a later value of the slot), and the
            // tag the scan assigns to concurrently retired records takes
            // the max over it — or the scan's fence precedes ours, and
            // this thread's traversal loads (all sequenced after this
            // fence) observe every unlink that fed that scan, so the
            // operation cannot reach the scan's retired blocks at all.
            // Either way, a record whose tag is *below* our entry epoch
            // is unreachable by this operation.
            fence(Ordering::SeqCst);
            // SeqCst (audited, required): re-reads the global epoch after
            // the fence so the published epoch is never left behind an
            // advance performed by a scan that fenced before us. This is
            // precision/liveness, not the freeing proof's safety link —
            // a reader-side validation *cannot* carry that proof, because
            // an unrelated scan's advance need not be visible to a later
            // tagging scan's epoch read (no happens-before reaches it;
            // stale reads are allowed by the model and by
            // non-multi-copy-atomic hardware). That hole is closed on the
            // scan side instead: the tag takes the max over every epoch
            // the sweep observes (see `collect_protection`). Publishing a
            // stale epoch here would only make scans defer frees longer
            // and stall the gated advance, which compares active slots
            // against the current epoch.
            let cur = GLOBAL_EPOCH.load(Ordering::SeqCst);
            if cur == e {
                break;
            }
            // A scan advanced the epoch between our load and publication;
            // re-publish at the newer epoch so the scan cannot conclude we
            // entered later than we did. Bounded: scans advance at most
            // once each, and re-running the loop is the cold path.
            e = cur;
        }
    }
}

impl OpGuard {
    /// Ejection detection hook, called by structure operations at their
    /// retry-loop heads: if this is the *outermost* operation and a scan
    /// has marked this thread's slot ejected, acknowledge (drop the epoch)
    /// and re-enter at a fresh era, returning `true` — every pointer the
    /// caller obtained under the old era is now invalid and the operation
    /// must restart from its structure entry point. Nested operations
    /// always return `false`: the restart belongs to the outermost
    /// operation (its completion — the outermost guard drop — is the
    /// acknowledgement), and `ENTRY*` hazard promotions keep any captured
    /// words safe across the remainder of the composition regardless.
    ///
    /// Cost when not ejected: one owner-local slot load and a predictable
    /// branch — no fence, no shared-line write.
    #[inline]
    pub fn repin_if_ejected(&mut self) -> bool {
        let slot = &EPOCHS[self.g.tid as usize];
        // Relaxed (audited): see `Guard::ejected`.
        if slot.epoch.load(Ordering::Relaxed) & (EJ_BIT | Z_BIT) == 0 {
            return false;
        }
        #[cfg(lfc_model)]
        if model_toggles::skip_eject_restart() {
            return false;
        }
        if slot.nest.load(Ordering::Relaxed) != 1 {
            return false;
        }
        // Acknowledge: leave the marked epoch entirely (Release orders our
        // traversal loads before it, exactly like the normal exit), then
        // re-enter through the full validated-entry path. The scanner's
        // zombie-promotion CAS fails on the changed slot value.
        slot.epoch.store(0, Ordering::Release);
        enter_epoch(slot);
        true
    }
}

impl Drop for OpGuard {
    #[inline]
    fn drop(&mut self) {
        let slot = &EPOCHS[self.g.tid as usize];
        let n = slot.nest.load(Ordering::Relaxed) - 1;
        slot.nest.store(n, Ordering::Relaxed);
        if n == 0 {
            // Release (audited): ends the epoch. Orders the operation's
            // traversal loads — and, crucially, any hazard promotions made
            // inside the epoch (`ENTRY*` capture handoffs) — before the
            // clear: a scan that Acquire-reads the quiescent slot therefore
            // sees every hazard published under this epoch, so protection
            // hands off without a window. No store-load fence needed:
            // seeing the clear late only delays reclamation.
            slot.epoch.store(0, Ordering::Release);
        }
    }
}

/// The current global epoch (diagnostics/tests).
pub fn epoch_now() -> usize {
    GLOBAL_EPOCH.load(Ordering::Relaxed)
}

/// Force one global-epoch advance (tests: simulate readers of later
/// generations). Safe at any time — advancing faster only makes newer
/// readers enter at higher epochs; the reclamation rule is driven by the
/// minimum *entered* epoch, never by the global value alone.
pub fn advance_epoch() -> usize {
    GLOBAL_EPOCH.fetch_add(1, Ordering::SeqCst) + 1
}

/// The smallest entry epoch among currently active readers, or `None` when
/// every thread is quiescent (diagnostics/tests).
pub fn min_active_epoch() -> Option<usize> {
    fence(Ordering::SeqCst);
    let hw = registered_high_water();
    EPOCHS
        .iter()
        .take(hw)
        .map(|s| s.epoch.load(Ordering::SeqCst))
        .filter(|&e| e != 0 && e & Z_BIT == 0)
        .map(|e| e & ERA_MASK)
        .min()
}

/// Hand an unlinked allocation to the domain for deferred reclamation.
///
/// # Safety
///
/// * `ptr` must point to a live allocation that `reclaim` can free exactly
///   once.
/// * The allocation must already be unlinked per the retire contract in the
///   crate docs: any thread that subsequently reaches it through shared
///   memory must fail its hazard validation.
#[inline]
pub unsafe fn retire(ptr: *mut u8, reclaim: unsafe fn(*mut u8)) {
    // Safety: forwarded contract. Legacy records carry no byte count, no
    // birth era and no divert path, so a zombie can pin them forever —
    // callers that want the stall bound use `retire_with`.
    unsafe {
        retire_with(
            ptr,
            reclaim,
            RetireInfo {
                bytes: 0,
                birth: BIRTH_UNKNOWN,
                divert: None,
            },
        )
    };
}

/// Birth era of a record retired without one: pessimistically "older than
/// every stall", so the zombie partition can never free it by birth
/// evidence. (The global epoch starts at 1, so 0 is never a real era.)
pub const BIRTH_UNKNOWN: usize = 0;

/// The era to stamp a freshly allocated block with, *before* publication
/// (a plain field write is enough — publication orders it). Relaxed: a
/// stale (older) read only makes the birth more conservative.
#[inline]
pub fn birth_era() -> usize {
    GLOBAL_EPOCH.load(Ordering::Relaxed)
}

/// Robustness annotations for [`retire_with`].
#[derive(Clone, Copy, Debug)]
pub struct RetireInfo {
    /// Allocation size in bytes, charged against
    /// [`StallPolicy::max_retired_bytes`] until the record is freed.
    pub bytes: usize,
    /// The [`birth_era`] stamped on the allocation before it was published
    /// ([`BIRTH_UNKNOWN`] if the caller cannot provide one).
    pub birth: usize,
    /// Type-stable fallback free for the zombie partition: must return the
    /// block to its (never-unmapped) pool **without** running drop glue.
    /// For types without drop glue this may simply be the reclaimer.
    pub divert: Option<unsafe fn(*mut u8)>,
}

/// [`retire`] with stall-robustness annotations: the byte size feeds the
/// garbage budget, and the birth era plus divert path let the zombie tier
/// bound garbage under a parked reader (crate docs, "Stall robustness").
///
/// # Safety
///
/// As [`retire`]; additionally `info.divert`, when present, must free the
/// block into type-stable memory without dereferencing its contents.
#[inline]
pub unsafe fn retire_with(ptr: *mut u8, reclaim: unsafe fn(*mut u8), info: RetireInfo) {
    RETIRED_TOTAL.fetch_add(1, Ordering::Relaxed);
    // No fence and no epoch read here: the record enters the list
    // UNTAGGED, and the first scan that sees it — whose own SC fence is
    // ordered after this retire (same thread, or the orphan handoff's
    // release/acquire) and hence after the caller's unlink — assigns the
    // tag. Keeps the retire path at a Vec push; the byte charge is a plain
    // thread-local add, published at scan time (see [`RETIRED_BYTES`]).
    let r = Retired {
        ptr,
        reclaim,
        epoch: UNTAGGED,
        bytes: info.bytes,
        birth: info.birth,
        divert: info.divert,
    };
    if thread_is_exiting() {
        // Thread-exit fallback: park the record on the orphan stack (the
        // next scan by any live thread adopts it) and publish its bytes
        // now — there is no later scan of ours to fold them in.
        RETIRED_BYTES.fetch_add(info.bytes, Ordering::Relaxed);
        orphans_push(vec![r]);
        return;
    }
    with_reclaim(|tr| {
        tr.bytes_unpublished += info.bytes;
        tr.pending.push(r);
        if tr.pending.len() >= tr.next_scan.max(scan_threshold()) {
            publish_and_scan(tr);
        }
    });
}

/// Fold this thread's unpublished byte charges into the global gauge, then
/// scan and re-arm. Every scan of a live thread's list goes through here so
/// the gauge is current before `collect_protection` computes pressure.
fn publish_and_scan(tr: &mut ThreadReclaim) {
    if tr.bytes_unpublished != 0 {
        RETIRED_BYTES.fetch_add(tr.bytes_unpublished, Ordering::Relaxed);
        tr.bytes_unpublished = 0;
    }
    scan_list(&mut tr.pending);
    tr.next_scan = rearm_scan(tr.pending.len());
}

fn scan_threshold() -> usize {
    (2 * SLOTS_PER_THREAD * registered_high_water().max(1)).max(128)
}

/// Adaptive re-arm after a scan (see [`ThreadReclaim::next_scan`]): the
/// next scan triggers once the pending list doubles past the records this
/// scan could not free — capped at a multiple of the base threshold, so a
/// one-time pinned burst cannot permanently raise the trigger: once the
/// pin clears, at most `RETENTION_CAP` further retires pass before a scan
/// drains the (now freeable) backlog, instead of waiting for pending to
/// double past the burst size. Above the cap, scan cost degrades from
/// amortized O(1) to O(pending / RETENTION_CAP) per retire — the price of
/// bounded retention, paid only while something pins an extreme backlog.
/// Performance-only either way: scan *frequency* never enters the freeing
/// proof — every scan re-derives all protection from its own SC fence and
/// sweeps.
fn rearm_scan(survivors: usize) -> usize {
    const RETENTION_CAP_FACTOR: usize = 32;
    let cap = survivors + RETENTION_CAP_FACTOR * scan_threshold();
    survivors.saturating_mul(2).min(cap)
}

/// A consistent snapshot of everything currently protecting retired memory:
/// the hazard set plus the smallest entry epoch among active readers
/// (`usize::MAX` when all threads are quiescent).
struct Protection {
    hazards: HashSet<usize>,
    min_enter: usize,
    /// The tag assigned to records this scan sees untagged: the max of the
    /// global epoch read after this scan's fence and every entry epoch the
    /// reader sweep observed. See `collect_protection` for why the sweep
    /// must participate in the max.
    tag: usize,
    /// Zombie slots this scan observed: their entry eras no longer feed
    /// `min_enter`; records only they could reach go through the birth-era
    /// partition in `scan_list`.
    zombies: Vec<Zombie>,
}

/// A zombified reader as seen by one scan.
#[derive(Clone, Copy)]
struct Zombie {
    /// The entry era its slot still publishes: the zombie can only hold
    /// paths to records whose tag is ≥ this.
    entry: usize,
    /// The era it was ejected at (from [`EJECT_ERA`]): records born after
    /// this are provably out of its reach.
    ejected: usize,
}

/// Collect every current protection — epochs first, hazards second.
fn collect_protection() -> Protection {
    // SeqCst fence (audited, required): unlinking stores are AcqRel CASes
    // (`DAtomic::cas_word`), which do not participate in the SC total
    // order, so the slot loads below being SeqCst is not by itself enough
    // to order them after the unlink. The fence restores the Dekker: for
    // any reader, either its validation load (or epoch enter fence) follows
    // this fence in the SC order — then (C++17 atomics.order p6, write
    // sequenced-before an SC fence that precedes an SC load) it observes
    // the unlink and fails validation / cannot reach the block — or its SC
    // slot store/fence precedes this fence in the SC order, and the loads
    // below see the protection. Cold path: one fence per scan.
    fence(Ordering::SeqCst);
    let hw = registered_high_water();

    let pol = stall_policy();
    // Ejection is armed only under genuine garbage pressure; a stalled
    // reader on an idle system costs nothing and is left alone.
    let pressure = RETIRED_BYTES.load(Ordering::Relaxed) > pol.max_retired_bytes
        || retired_count() > pol.max_retired_count;

    // Epoch sweep BEFORE the hazard sweep. A reader that exits its epoch
    // after promoting a protection into a hazard slot stores the hazard
    // (SeqCst) before the epoch clear (Release); Acquire-reading the
    // cleared slot here therefore synchronizes-with the exit, making the
    // promoted hazard visible to the later hazard sweep — protection hands
    // off with no window. (Sweeping hazards first would open one.)
    // SeqCst (audited, required): this load and the reader-side validation
    // load in `pin_op` are ordered by the global epoch's single
    // modification order within the SC order; the freeing proof's chain —
    // tag-read <s advance <s reader-validate — is what lets "entry epoch
    // greater than the tag" imply "entered after the tagging scan's
    // fence".
    let cur = GLOBAL_EPOCH.load(Ordering::SeqCst);
    let mut min_enter = usize::MAX;
    // The tag for untagged records must dominate the entry epoch of every
    // reader that might still hold a pre-unlink path to them. `cur` alone
    // is NOT enough: an *unrelated* scan may advance the epoch E -> E+1
    // just before the unlink, and a reader may enter and validate E+1
    // also before the unlink — while nothing orders our load above after
    // that advance (no happens-before edge reaches us; an SC load may
    // still precede the SC advance in the total order, a stale read the
    // model permits and non-multi-copy-atomic hardware exhibits). Tagging
    // the record E would let a later scan see min_enter = E+1 > tag and
    // free the block under that reader — a use-after-free. Taking the max
    // over every epoch the sweep observes closes the hole: a reader that
    // can still reach the block has its final enter fence *before* our
    // fence in the SC order (otherwise its traversal loads, all after its
    // fence, would observe the unlink that fed this scan), so the SC
    // fence-fence rule makes its validated entry epoch — stored before
    // that fence — visible to the sweep below, and the tag dominates it.
    let mut tag = cur;
    let mut all_at_cur = true;
    let mut zombies = Vec::new();
    for (i, slot) in EPOCHS.iter().enumerate().take(hw) {
        // SeqCst (audited, required): the scanner's side of the Dekker
        // with the reader's slot store + enter fence (a reader this load
        // misses provably fenced after our fence above, i.e. entered after
        // every unlink feeding this scan). Also ≥ Acquire, which pairs
        // with the Release epoch clear (see above).
        let v = slot.epoch.load(Ordering::SeqCst);
        if v == 0 {
            continue;
        }
        let era = v & ERA_MASK;
        if v & Z_BIT != 0 {
            // Zombie (R2): excluded from `min_enter` — it no longer gates
            // the epoch condition — and from the gated-advance vote, so
            // the clock runs again. Folding its era into the tag is
            // harmless (monotone) and keeps the tag dominating every
            // observed entry. SeqCst on EJECT_ERA (audited): the promoting
            // scan's fetch_max precedes its Z CAS in the SC order, so any
            // scan that observes the Z bit observes an eject era from this
            // (or a later) episode, never 0.
            tag = tag.max(era);
            zombies.push(Zombie {
                entry: era,
                ejected: EJECT_ERA[i].load(Ordering::SeqCst),
            });
            continue;
        }
        min_enter = min_enter.min(era);
        tag = tag.max(era);
        if era != cur {
            all_at_cur = false;
        }
        if v & EJ_BIT != 0 {
            // R1-marked, not yet acknowledged. Still gates everything —
            // the mark is a request, not a revocation. Promote to zombie
            // once the grace window has passed without an acknowledgement
            // (the owner would have cleared the mark by re-entering or
            // exiting, making this CAS fail on the changed value).
            let j = EJECT_ERA[i].load(Ordering::SeqCst);
            if cur.saturating_sub(j) >= pol.grace_eras
                && slot
                    .epoch
                    .compare_exchange(v, v | Z_BIT, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok()
            {
                ZOMBIES_TOTAL.fetch_add(1, Ordering::Relaxed);
                // Conservatively still a gating reader for *this* scan
                // (min_enter above already included it); the partition
                // takes over from the next scan.
            }
        } else if pressure && cur.saturating_sub(era) >= pol.stall_eras {
            // Eject: record the ejection era first (monotone fetch_max —
            // a lost race or a stale value from an earlier episode only
            // widens the diverted set, the conservative direction), then
            // install the mark. The CAS fails if the owner moved, i.e.
            // was not actually stalled.
            EJECT_ERA[i].fetch_max(cur, Ordering::SeqCst);
            if slot
                .epoch
                .compare_exchange(v, v | EJ_BIT, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                EJECTIONS_TOTAL.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    #[cfg(lfc_model)]
    if model_toggles::stale_tag_bug() {
        // Adversarial acceptance toggle: drop the reader-sweep fold and
        // tag with the (possibly stale) epoch read alone.
        tag = cur;
    }
    if all_at_cur {
        // Every active reader has caught up with the current epoch (or no
        // reader is active): advance, so future readers enter — and future
        // scans tag — at a strictly newer generation. Failure just means
        // another scan advanced first. SeqCst: the `advance` link of the
        // proof chain above.
        let _ = GLOBAL_EPOCH.compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::Relaxed);
    }
    // Laggard-driven era tick: the gated advance above stalls the moment
    // one reader lags, which would cap observable lag at about one era and
    // make `stall_eras` thresholds unreachable — the ejection tier needs
    // the clock to keep running while a laggard pins it. The tick fires
    // only when a laggard actually blocked the gated advance, and only on
    // retire volume (an idle system's clock stays put). Keeping it out of
    // the all-current steady state matters for throughput: ticking ahead
    // of the sweep would leave every scanning reader one era behind `cur`,
    // permanently defeating `all_at_cur` and holding fresh tags one era
    // short of the freeing condition — a standing retired backlog instead
    // of next-scan draining. Safe for the same reason `advance_epoch` is:
    // a faster-moving epoch only makes newer readers enter (and scans tag)
    // at higher eras; the freeing rule is driven by entered epochs.
    // Compiled out under the model: cumulative cross-execution retire
    // counts would make explored executions diverge on replay; model
    // scenarios drive eras explicitly via `advance_epoch`.
    #[cfg(not(lfc_model))]
    if !all_at_cur {
        let retired = RETIRED_TOTAL.load(Ordering::Relaxed);
        let mark = ERA_TICK.load(Ordering::Relaxed);
        if retired.wrapping_sub(mark) >= ERA_RETIRE_QUANTUM
            && ERA_TICK
                .compare_exchange(mark, retired, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            GLOBAL_EPOCH.fetch_add(1, Ordering::SeqCst);
        }
    }

    let mut hazards = HashSet::with_capacity(hw * 4);
    for bank in SLOTS.iter().take(hw) {
        for s in &bank.slots {
            // SeqCst (audited, required): the scanner's side of the Dekker
            // pair with `Guard::set` — together with the fence above these
            // loads are ordered after the retiring thread's unlinking
            // store, so any reader that could still acquire the pointer
            // has its hazard visible here.
            let v = s.load(Ordering::SeqCst);
            if v != 0 {
                hazards.insert(v);
            }
        }
    }
    Protection {
        hazards,
        min_enter,
        tag,
        zombies,
    }
}

/// Reclaim everything in `list` that nothing protects; retain the rest.
///
/// A record is freed only when **both** regimes release it: its retire
/// epoch predates every active reader's entry epoch (no in-flight traversal
/// can still hold a pre-unlink path to it), and no hazard slot names it (an
/// `ENTRY*`/`HELP*`/`DESC` pin from an in-flight composition keeps a block
/// alive even after all epochs quiesce).
fn scan_list(list: &mut Vec<Retired>) {
    SCANS_TOTAL.fetch_add(1, Ordering::Relaxed);
    // Adopt orphans so abandoned garbage cannot accumulate forever.
    orphans_adopt(list);
    let p = collect_protection();
    let pending = std::mem::take(list);
    // Per-scan batches for the global gauges: one RMW each at the end
    // instead of one per freed record (the free loop is the hot part of a
    // scan; lock-prefixed RMWs per record showed up in profiles).
    let mut freed_bytes = 0usize;
    let mut reclaimed = 0usize;
    let mut diverted = 0usize;
    for mut r in pending {
        let epoch_clear = if r.epoch == UNTAGGED {
            // First scan to see this record. With no active reader it can
            // go at once: an invisible (concurrently entering) reader
            // fenced after this scan's fence, hence after the unlink that
            // preceded the retire that fed us the record. With readers
            // active, tag it — with the max of this scan's epoch read and
            // every reader epoch the sweep saw, so the tag dominates any
            // reader that could still reach the block — and defer; a
            // later scan frees it once every active reader entered past
            // the tag.
            r.epoch = p.tag;
            p.min_enter == usize::MAX
        } else {
            r.epoch < p.min_enter
        };
        if !epoch_clear || p.hazards.contains(&(r.ptr as usize)) {
            list.push(r);
            continue;
        }
        // Zombie partition (R2, see crate docs): `epoch_clear` says no
        // *non-zombie* reader can reach the record. A zombie with entry
        // era ≤ the tag may still hold a pre-unlink path — unless the
        // record was born after that zombie was ejected (it stalled before
        // the ejection, so a block allocated after it can never have been
        // captured by it). Records some zombie could reach are diverted
        // into type-stable limbo when the retirer provided a divert path,
        // and retained otherwise.
        let mut divert = false;
        let mut retain = false;
        for z in &p.zombies {
            if r.epoch >= z.entry && !(r.birth != BIRTH_UNKNOWN && r.birth > z.ejected) {
                if r.divert.is_some() {
                    divert = true;
                } else {
                    retain = true;
                    break;
                }
            }
        }
        if retain {
            list.push(r);
        } else if divert {
            diverted += 1;
            freed_bytes += r.bytes;
            // Safety: retire_with contract — divert frees into the
            // type-stable pool without touching the contents.
            unsafe { (r.divert.unwrap())(r.ptr) };
        } else {
            reclaimed += 1;
            freed_bytes += r.bytes;
            // Safety: unlinked per the retire contract and unprotected now.
            unsafe { (r.reclaim)(r.ptr) };
        }
    }
    if reclaimed != 0 {
        RECLAIMED_TOTAL.fetch_add(reclaimed, Ordering::Relaxed);
    }
    if diverted != 0 {
        DIVERTED_TOTAL.fetch_add(diverted, Ordering::Relaxed);
    }
    if freed_bytes != 0 {
        RETIRED_BYTES.fetch_sub(freed_bytes, Ordering::Relaxed);
    }
}

/// Force a reclamation attempt on the current thread's retire list (and the
/// orphan list). Primarily for tests and shutdown paths.
pub fn flush() {
    if thread_is_exiting() {
        let mut list = Vec::new();
        scan_list(&mut list);
        orphans_push(list);
        return;
    }
    with_reclaim(publish_and_scan);
}

/// Number of retired-but-not-yet-freed allocations (process-wide; diverted
/// records count as freed — their blocks are back in the pool).
pub fn pending_retired() -> usize {
    retired_count()
}

/// Number of retired records still awaiting reclamation (the count the
/// [`StallPolicy::max_retired_count`] budget is charged against).
pub fn retired_count() -> usize {
    RETIRED_TOTAL
        .load(Ordering::Relaxed)
        .saturating_sub(RECLAIMED_TOTAL.load(Ordering::Relaxed))
        .saturating_sub(DIVERTED_TOTAL.load(Ordering::Relaxed))
}

/// Bytes held by retired records still awaiting reclamation, as reported
/// through [`retire_with`] (legacy [`retire`] records contribute 0). The
/// quantity the stall adversary bounds and the
/// [`StallPolicy::max_retired_bytes`] budget is charged against.
pub fn retired_bytes() -> usize {
    RETIRED_BYTES.load(Ordering::Relaxed)
}

/// Number of records diverted into type-stable limbo by the zombie tier
/// (their drop glue never ran; bounded per stall — see crate docs).
pub fn diverted_count() -> usize {
    DIVERTED_TOTAL.load(Ordering::Relaxed)
}

/// (ejection marks installed, zombie promotions) since process start.
pub fn ejection_stats() -> (usize, usize) {
    (
        EJECTIONS_TOTAL.load(Ordering::Relaxed),
        ZOMBIES_TOTAL.load(Ordering::Relaxed),
    )
}

/// Number of reclamation scans run since process start (diagnostics).
pub fn scan_count() -> usize {
    SCANS_TOTAL.load(Ordering::Relaxed)
}

/// (retired, reclaimed) totals since process start.
pub fn stats() -> (usize, usize) {
    (
        RETIRED_TOTAL.load(Ordering::Relaxed),
        RECLAIMED_TOTAL.load(Ordering::Relaxed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as Counter;

    static DROPS: Counter = Counter::new(0);

    unsafe fn reclaim_box_u64(p: *mut u8) {
        drop(unsafe { Box::from_raw(p as *mut u64) });
        DROPS.fetch_add(1, Ordering::Relaxed);
    }

    #[test]
    fn protect_returns_loaded_value() {
        let g = pin();
        let word = AtomicUsize::new(0xAB00);
        let v = g.protect(slot::INS0, || word.load(Ordering::Relaxed));
        assert_eq!(v, 0xAB00);
        assert_eq!(g.get(slot::INS0), 0xAB00);
        g.clear(slot::INS0);
        assert_eq!(g.get(slot::INS0), 0);
    }

    #[test]
    fn protect_follows_moving_target() {
        // load() returns a different value the first few calls; protect must
        // settle on a validated one.
        let g = pin();
        let calls = Counter::new(0);
        let v = g.protect(slot::INS1, || {
            let c = calls.fetch_add(1, Ordering::Relaxed);
            if c < 3 {
                0x1000 + c
            } else {
                0x2000
            }
        });
        assert_eq!(v, 0x2000);
        g.clear(slot::INS1);
    }

    #[test]
    fn unprotected_retire_reclaims_on_flush() {
        let before = DROPS.load(Ordering::Relaxed);
        let p = Box::into_raw(Box::new(7u64)) as *mut u8;
        unsafe { retire(p, reclaim_box_u64) };
        flush();
        assert!(DROPS.load(Ordering::Relaxed) > before);
    }

    #[test]
    fn protected_retire_is_deferred_until_cleared() {
        let g = pin();
        let p = Box::into_raw(Box::new(9u64)) as *mut u8;
        g.set(slot::REM0, p as usize);
        unsafe { retire(p, reclaim_box_u64) };
        flush();
        // Still protected: must not have been freed. Read through it.
        assert_eq!(unsafe { *(p as *mut u64) }, 9);
        g.clear(slot::REM0);
        flush();
        // Now it must be gone (we cannot read it; rely on counters).
        assert!(!pending_retired_contains(p));
    }

    fn pending_retired_contains(_p: *mut u8) -> bool {
        // There is no address-level query; this helper documents intent. The
        // deferred/reclaimed behaviour is asserted via the protected read
        // above and the drop counters in other tests.
        false
    }

    #[test]
    fn threshold_scan_bounds_garbage() {
        // Retire far more than the threshold; pending must stay bounded.
        for _ in 0..10_000 {
            let p = Box::into_raw(Box::new(1u64)) as *mut u8;
            unsafe { retire(p, reclaim_box_u64) };
        }
        flush();
        assert!(
            pending_retired() < 4 * scan_threshold(),
            "pending {} should be bounded by a small multiple of the threshold {}",
            pending_retired(),
            scan_threshold()
        );
    }

    #[test]
    fn orphans_from_dead_threads_are_adopted() {
        let before = DROPS.load(Ordering::Relaxed);
        std::thread::spawn(|| {
            // Protect our own retired allocation so the exit-scan cannot free
            // it and it lands on the orphan list... except slots are cleared
            // only by us; instead protect with a *live* main-thread slot.
            let p = Box::into_raw(Box::new(3u64)) as *mut u8;
            unsafe { retire(p, reclaim_box_u64) };
        })
        .join()
        .unwrap();
        // The spawned thread's exit hook scans; if anything was left it is on
        // the orphan list and this flush adopts it.
        flush();
        assert!(DROPS.load(Ordering::Relaxed) > before);
    }

    #[test]
    fn orphan_batches_from_many_dead_threads_are_all_reclaimed() {
        // Several threads exit while their retirees are pinned by a live
        // hazard, so each exit parks one batch on the orphan stack. After
        // the hazard clears, a single scan must adopt *every* batch and
        // reclaim every orphaned allocation (the eventual-reclamation
        // guarantee of the lock-free orphan path).
        const THREADS: usize = 8;
        const PER_THREAD: usize = 10;
        let _g = pin();
        let pins: Vec<*mut u8> = (0..THREADS * PER_THREAD)
            .map(|_| Box::into_raw(Box::new(11u64)) as *mut u8)
            .collect();
        let before = stats();
        std::thread::scope(|sc| {
            for t in 0..THREADS {
                let chunk: Vec<usize> = pins[t * PER_THREAD..(t + 1) * PER_THREAD]
                    .iter()
                    .map(|p| *p as usize)
                    .collect();
                sc.spawn(move || {
                    // Register, then retire from inside the exit hook so the
                    // records take the orphan path deterministically.
                    lfc_runtime::on_thread_exit(Box::new(move || {
                        for addr in chunk {
                            unsafe { retire(addr as *mut u8, reclaim_box_u64) };
                        }
                    }));
                });
            }
        });
        // All threads exited; their retirees sit in orphan batches. A
        // flush adopts and reclaims them — but a concurrently running
        // sibling test's flush may adopt some batches into its own pending
        // list first, so reclamation is *eventual*: keep flushing until
        // the count arrives (sibling threads reclaim adopted orphans no
        // later than their own exit scan).
        let target = before.1 + THREADS * PER_THREAD;
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while stats().1 < target && std::time::Instant::now() < deadline {
            flush();
            std::thread::yield_now();
        }
        let after = stats();
        assert!(
            after.1 >= target,
            "all {} orphaned retirees reclaimed ({} -> {})",
            THREADS * PER_THREAD,
            before.1,
            after.1
        );
    }

    #[test]
    fn cross_thread_protection_is_respected() {
        // Main thread protects; worker retires + flushes; object must survive.
        let g = pin();
        let p = Box::into_raw(Box::new(0xFEEDu64)) as *mut u8;
        g.set(slot::INS2, p as usize);
        let pv = p as usize;
        std::thread::spawn(move || {
            let p = pv as *mut u8;
            unsafe { retire(p, reclaim_box_u64) };
            flush();
        })
        .join()
        .unwrap();
        // Worker exited; its leftovers are orphaned. We still hold the hazard.
        assert_eq!(unsafe { *(p as *mut u64) }, 0xFEED);
        g.clear(slot::INS2);
        flush();
    }

    #[test]
    fn guard_is_copy_and_stable() {
        let a = pin();
        let b = pin();
        assert_eq!(a.tid(), b.tid());
        let c = a;
        assert_eq!(c.tid(), a.tid());
    }

    #[test]
    fn stats_monotone() {
        let (r0, c0) = stats();
        let p = Box::into_raw(Box::new(1u64)) as *mut u8;
        unsafe { retire(p, reclaim_box_u64) };
        flush();
        let (r1, c1) = stats();
        assert!(r1 > r0);
        assert!(c1 >= c0);
    }
}
