//! Hazard-pointer memory reclamation, after Michael,
//! *Hazard Pointers: Safe Memory Reclamation for Lock-Free Objects* (2004) —
//! the scheme the paper's objects and DCAS use (reference \[17\] in the paper).
//!
//! One process-global domain holds a fixed bank of hazard slots per
//! registered thread. Threads protect an allocation by publishing its base
//! address into one of their slots and re-validating the source pointer;
//! retired allocations are kept on per-thread lists and reclaimed by a scan
//! that frees everything no slot protects.
//!
//! # Slot convention
//!
//! The composition protocol needs several simultaneously live protections
//! per thread (paper §5: `hp1..hp4`, plus the descriptor hazard `hpd` used
//! by the `read` operation and the two adopted protections of DCAS lines
//! D2–D3). Fixed roles are assigned in [`slot`] so the layers never clobber
//! each other:
//!
//! * insert-side operation hazards: [`slot::INS0`]..[`slot::INS2`]
//! * remove-side operation hazards: [`slot::REM0`]..[`slot::REM2`]
//!   (insert and remove *must not share* hazard slots — paper requirement 2
//!   discussion: shared hazard pointers would let a move's insert overwrite
//!   its remove's protections)
//! * the descriptor hazard set by `read` before helping: [`slot::DESC`]
//! * the adopted protections of a helping DCAS (lines D2–D3):
//!   [`slot::HELP1`], [`slot::HELP2`]
//! * CASN helping protections (extension): [`slot::KCAS0`]..
//!
//! # Retire contract
//!
//! `retire(p, f)` may be called once the allocation has been unlinked such
//! that any thread that later finds a pointer to it through shared memory
//! will *fail its validation step* (set slot, re-read source, compare). The
//! DCAS protocol preserves this: descriptors are retired only after the
//! operation is decided and the initiating side's word has been swung, and
//! every helper removes its own stale marked descriptor before clearing the
//! hazard that protects it (see `lfc-dcas`).

#![warn(missing_docs)]

use lfc_runtime::{current_tid, on_thread_exit, registered_high_water, thread_is_exiting, MAX_THREADS};
use std::cell::Cell;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Named hazard-slot indices (roles) within a thread's slot bank.
pub mod slot {
    /// First insert-side operation hazard (paper `hp1`).
    pub const INS0: usize = 0;
    /// Second insert-side operation hazard (paper `hp2`).
    pub const INS1: usize = 1;
    /// Third insert-side hazard (keyed structures need prev/curr/next).
    pub const INS2: usize = 2;
    /// First remove-side operation hazard (paper `hp3`).
    pub const REM0: usize = 3;
    /// Second remove-side operation hazard (paper `hp4`).
    pub const REM1: usize = 4;
    /// Third remove-side hazard (keyed structures).
    pub const REM2: usize = 5;
    /// Descriptor hazard set by the `read` operation before helping
    /// (the paper's `hpd`, line D35).
    pub const DESC: usize = 6;
    /// Helper-adopted protection of the word-1 allocation (line D3).
    pub const HELP1: usize = 7;
    /// Helper-adopted protection of the word-2 allocation (line D3).
    pub const HELP2: usize = 8;
    /// Base of the CASN helper protections (extension; one per entry).
    pub const KCAS0: usize = 9;
    /// Number of CASN helper slots.
    pub const KCAS_COUNT: usize = 7;
}

/// Hazard slots per registered thread.
pub const SLOTS_PER_THREAD: usize = 16;

const TOTAL_SLOTS: usize = MAX_THREADS * SLOTS_PER_THREAD;

static SLOTS: [AtomicUsize; TOTAL_SLOTS] = [const { AtomicUsize::new(0) }; TOTAL_SLOTS];

/// Total allocations handed to [`retire`].
static RETIRED_TOTAL: AtomicUsize = AtomicUsize::new(0);
/// Total retired allocations whose reclaimer has run.
static RECLAIMED_TOTAL: AtomicUsize = AtomicUsize::new(0);

/// A retired allocation awaiting reclamation.
struct Retired {
    ptr: *mut u8,
    reclaim: unsafe fn(*mut u8),
}

// Retired pointers are only dereferenced by their reclaimer; moving the
// records between threads (orphan list) is safe because reclamation runs at
// most once and the pointee is unreachable except through this record.
unsafe impl Send for Retired {}

/// Retire lists abandoned by exited threads; adopted by the next scan.
static ORPHANS: Mutex<Vec<Retired>> = Mutex::new(Vec::new());

struct ThreadReclaim {
    pending: Vec<Retired>,
}

thread_local! {
    static RECLAIM: Cell<*mut ThreadReclaim> = const { Cell::new(std::ptr::null_mut()) };
}

fn with_reclaim<R>(f: impl FnOnce(&mut ThreadReclaim) -> R) -> R {
    RECLAIM.with(|cell| {
        let mut p = cell.get();
        if p.is_null() {
            p = Box::into_raw(Box::new(ThreadReclaim {
                pending: Vec::new(),
            }));
            cell.set(p);
            // Tear down *before* the thread id is released (lfc-runtime runs
            // hooks ahead of freeing the id), so the slot bank cannot be
            // adopted by a new thread while we still use it.
            on_thread_exit(Box::new(move || {
                RECLAIM.with(|c| c.set(std::ptr::null_mut()));
                // Safety: pointer was uniquely created above; hook runs once.
                let mut tr = unsafe { Box::from_raw(p) };
                // One last scan attempt, then park leftovers on the orphan list.
                scan_list(&mut tr.pending);
                if !tr.pending.is_empty() {
                    ORPHANS.lock().unwrap().append(&mut tr.pending);
                }
            }));
        }
        // Safety: exclusive to this thread; never aliased across the closure.
        f(unsafe { &mut *p })
    })
}

/// A cheap per-thread handle to the hazard domain.
///
/// `Guard` is `Copy`; it does not clear slots on drop. Operations own fixed
/// slot roles (see [`slot`]) and clear them explicitly.
#[derive(Clone, Copy, Debug)]
pub struct Guard {
    tid: u16,
}

/// Obtain the current thread's guard, registering the thread on first use.
pub fn pin() -> Guard {
    Guard {
        tid: current_tid(),
    }
}

impl Guard {
    /// This thread's dense id (used for descriptor marking).
    pub fn tid(&self) -> u16 {
        self.tid
    }

    #[inline]
    fn slot_ref(&self, idx: usize) -> &'static AtomicUsize {
        debug_assert!(idx < SLOTS_PER_THREAD);
        &SLOTS[self.tid as usize * SLOTS_PER_THREAD + idx]
    }

    /// Publish `addr` in slot `idx`. SeqCst so the store is ordered before
    /// any subsequent validation load (Michael's algorithm needs a
    /// store-load fence here).
    #[inline]
    pub fn set(&self, idx: usize, addr: usize) {
        self.slot_ref(idx).store(addr, Ordering::SeqCst);
    }

    /// Clear slot `idx`.
    #[inline]
    pub fn clear(&self, idx: usize) {
        self.slot_ref(idx).store(0, Ordering::SeqCst);
    }

    /// Current value of slot `idx` (diagnostics/tests).
    pub fn get(&self, idx: usize) -> usize {
        self.slot_ref(idx).load(Ordering::SeqCst)
    }

    /// Set-and-validate loop: publishes the value returned by `load`, then
    /// re-runs `load` until it observes the same value, guaranteeing the
    /// protection was visible before the allocation could have been freed.
    #[inline]
    pub fn protect(&self, idx: usize, load: impl Fn() -> usize) -> usize {
        let mut cur = load();
        loop {
            self.set(idx, cur);
            let again = load();
            if again == cur {
                return cur;
            }
            cur = again;
        }
    }
}

/// Hand an unlinked allocation to the domain for deferred reclamation.
///
/// # Safety
///
/// * `ptr` must point to a live allocation that `reclaim` can free exactly
///   once.
/// * The allocation must already be unlinked per the retire contract in the
///   crate docs: any thread that subsequently reaches it through shared
///   memory must fail its hazard validation.
pub unsafe fn retire(ptr: *mut u8, reclaim: unsafe fn(*mut u8)) {
    RETIRED_TOTAL.fetch_add(1, Ordering::Relaxed);
    if thread_is_exiting() {
        // Thread-exit fallback: park the record on the orphan list; the next
        // scan by any live thread adopts it.
        ORPHANS.lock().unwrap().push(Retired { ptr, reclaim });
        return;
    }
    with_reclaim(|tr| {
        tr.pending.push(Retired { ptr, reclaim });
        if tr.pending.len() >= scan_threshold() {
            scan_list(&mut tr.pending);
        }
    });
}

fn scan_threshold() -> usize {
    (2 * SLOTS_PER_THREAD * registered_high_water().max(1)).max(128)
}

/// Collect every currently protected address.
fn collect_hazards() -> HashSet<usize> {
    let hw = registered_high_water();
    let mut set = HashSet::with_capacity(hw * 4);
    for t in 0..hw {
        for s in 0..SLOTS_PER_THREAD {
            let v = SLOTS[t * SLOTS_PER_THREAD + s].load(Ordering::SeqCst);
            if v != 0 {
                set.insert(v);
            }
        }
    }
    set
}

/// Reclaim everything in `list` that no hazard protects; retain the rest.
fn scan_list(list: &mut Vec<Retired>) {
    // Adopt orphans so abandoned garbage cannot accumulate forever.
    if let Ok(mut orphans) = ORPHANS.try_lock() {
        list.append(&mut orphans);
    }
    let hazards = collect_hazards();
    let pending = std::mem::take(list);
    for r in pending {
        if hazards.contains(&(r.ptr as usize)) {
            list.push(r);
        } else {
            RECLAIMED_TOTAL.fetch_add(1, Ordering::Relaxed);
            // Safety: unlinked per the retire contract and unprotected now.
            unsafe { (r.reclaim)(r.ptr) };
        }
    }
}

/// Force a reclamation attempt on the current thread's retire list (and the
/// orphan list). Primarily for tests and shutdown paths.
pub fn flush() {
    if thread_is_exiting() {
        let mut list = Vec::new();
        scan_list(&mut list);
        if !list.is_empty() {
            ORPHANS.lock().unwrap().append(&mut list);
        }
        return;
    }
    with_reclaim(|tr| scan_list(&mut tr.pending));
}

/// Number of retired-but-not-yet-reclaimed allocations (process-wide).
pub fn pending_retired() -> usize {
    RETIRED_TOTAL
        .load(Ordering::Relaxed)
        .saturating_sub(RECLAIMED_TOTAL.load(Ordering::Relaxed))
}

/// (retired, reclaimed) totals since process start.
pub fn stats() -> (usize, usize) {
    (
        RETIRED_TOTAL.load(Ordering::Relaxed),
        RECLAIMED_TOTAL.load(Ordering::Relaxed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as Counter;

    static DROPS: Counter = Counter::new(0);

    unsafe fn reclaim_box_u64(p: *mut u8) {
        drop(unsafe { Box::from_raw(p as *mut u64) });
        DROPS.fetch_add(1, Ordering::SeqCst);
    }

    #[test]
    fn protect_returns_loaded_value() {
        let g = pin();
        let word = AtomicUsize::new(0xAB00);
        let v = g.protect(slot::INS0, || word.load(Ordering::SeqCst));
        assert_eq!(v, 0xAB00);
        assert_eq!(g.get(slot::INS0), 0xAB00);
        g.clear(slot::INS0);
        assert_eq!(g.get(slot::INS0), 0);
    }

    #[test]
    fn protect_follows_moving_target() {
        // load() returns a different value the first few calls; protect must
        // settle on a validated one.
        let g = pin();
        let calls = Counter::new(0);
        let v = g.protect(slot::INS1, || {
            let c = calls.fetch_add(1, Ordering::SeqCst);
            if c < 3 {
                0x1000 + c
            } else {
                0x2000
            }
        });
        assert_eq!(v, 0x2000);
        g.clear(slot::INS1);
    }

    #[test]
    fn unprotected_retire_reclaims_on_flush() {
        let before = DROPS.load(Ordering::SeqCst);
        let p = Box::into_raw(Box::new(7u64)) as *mut u8;
        unsafe { retire(p, reclaim_box_u64) };
        flush();
        assert!(DROPS.load(Ordering::SeqCst) > before);
    }

    #[test]
    fn protected_retire_is_deferred_until_cleared() {
        let g = pin();
        let p = Box::into_raw(Box::new(9u64)) as *mut u8;
        g.set(slot::REM0, p as usize);
        unsafe { retire(p, reclaim_box_u64) };
        flush();
        // Still protected: must not have been freed. Read through it.
        assert_eq!(unsafe { *(p as *mut u64) }, 9);
        g.clear(slot::REM0);
        flush();
        // Now it must be gone (we cannot read it; rely on counters).
        assert!(!pending_retired_contains(p));
    }

    fn pending_retired_contains(_p: *mut u8) -> bool {
        // There is no address-level query; this helper documents intent. The
        // deferred/reclaimed behaviour is asserted via the protected read
        // above and the drop counters in other tests.
        false
    }

    #[test]
    fn threshold_scan_bounds_garbage() {
        // Retire far more than the threshold; pending must stay bounded.
        for _ in 0..10_000 {
            let p = Box::into_raw(Box::new(1u64)) as *mut u8;
            unsafe { retire(p, reclaim_box_u64) };
        }
        flush();
        assert!(
            pending_retired() < 4 * scan_threshold(),
            "pending {} should be bounded by a small multiple of the threshold {}",
            pending_retired(),
            scan_threshold()
        );
    }

    #[test]
    fn orphans_from_dead_threads_are_adopted() {
        let before = DROPS.load(Ordering::SeqCst);
        std::thread::spawn(|| {
            // Protect our own retired allocation so the exit-scan cannot free
            // it and it lands on the orphan list... except slots are cleared
            // only by us; instead protect with a *live* main-thread slot.
            let p = Box::into_raw(Box::new(3u64)) as *mut u8;
            unsafe { retire(p, reclaim_box_u64) };
        })
        .join()
        .unwrap();
        // The spawned thread's exit hook scans; if anything was left it is on
        // the orphan list and this flush adopts it.
        flush();
        assert!(DROPS.load(Ordering::SeqCst) > before);
    }

    #[test]
    fn cross_thread_protection_is_respected() {
        // Main thread protects; worker retires + flushes; object must survive.
        let g = pin();
        let p = Box::into_raw(Box::new(0xFEEDu64)) as *mut u8;
        g.set(slot::INS2, p as usize);
        let pv = p as usize;
        std::thread::spawn(move || {
            let p = pv as *mut u8;
            unsafe { retire(p, reclaim_box_u64) };
            flush();
        })
        .join()
        .unwrap();
        // Worker exited; its leftovers are orphaned. We still hold the hazard.
        assert_eq!(unsafe { *(p as *mut u64) }, 0xFEED);
        g.clear(slot::INS2);
        flush();
    }

    #[test]
    fn guard_is_copy_and_stable() {
        let a = pin();
        let b = pin();
        assert_eq!(a.tid(), b.tid());
        let c = a;
        assert_eq!(c.tid(), a.tid());
    }

    #[test]
    fn stats_monotone() {
        let (r0, c0) = stats();
        let p = Box::into_raw(Box::new(1u64)) as *mut u8;
        unsafe { retire(p, reclaim_box_u64) };
        flush();
        let (r1, c1) = stats();
        assert!(r1 > r0);
        assert!(c1 >= c0);
    }
}
