//! Hazard-pointer memory reclamation, after Michael,
//! *Hazard Pointers: Safe Memory Reclamation for Lock-Free Objects* (2004) —
//! the scheme the paper's objects and DCAS use (reference \[17\] in the paper).
//!
//! One process-global domain holds a fixed bank of hazard slots per
//! registered thread. Threads protect an allocation by publishing its base
//! address into one of their slots and re-validating the source pointer;
//! retired allocations are kept on per-thread lists and reclaimed by a scan
//! that frees everything no slot protects.
//!
//! # Slot convention
//!
//! The composition protocol needs several simultaneously live protections
//! per thread (paper §5: `hp1..hp4`, plus the descriptor hazard `hpd` used
//! by the `read` operation and the two adopted protections of DCAS lines
//! D2–D3). Fixed roles are assigned in [`slot`] so the layers never clobber
//! each other:
//!
//! * insert-side operation hazards: [`slot::INS0`]..[`slot::INS2`]
//! * remove-side operation hazards: [`slot::REM0`]..[`slot::REM2`]
//!   (insert and remove *must not share* hazard slots — paper requirement 2
//!   discussion: shared hazard pointers would let a move's insert overwrite
//!   its remove's protections)
//! * the descriptor hazard set by `read` before helping: [`slot::DESC`]
//! * the adopted protections of a helping DCAS (lines D2–D3):
//!   [`slot::HELP1`], [`slot::HELP2`]
//! * CASN helping protections (extension): [`slot::KCAS0`]..
//!
//! # Retire contract
//!
//! `retire(p, f)` may be called once the allocation has been unlinked such
//! that any thread that later finds a pointer to it through shared memory
//! will *fail its validation step* (set slot, re-read source, compare). The
//! DCAS protocol preserves this: descriptors are retired only after the
//! operation is decided and the initiating side's word has been swung, and
//! every helper removes its own stale marked descriptor before clearing the
//! hazard that protects it (see `lfc-dcas`).

#![warn(missing_docs)]

use lfc_runtime::{
    current_tid, on_thread_exit, registered_high_water, thread_is_exiting, CachePadded, MAX_THREADS,
};
use std::cell::Cell;
use std::collections::HashSet;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

/// Named hazard-slot indices (roles) within a thread's slot bank.
pub mod slot {
    /// First insert-side operation hazard (paper `hp1`).
    pub const INS0: usize = 0;
    /// Second insert-side operation hazard (paper `hp2`).
    pub const INS1: usize = 1;
    /// Third insert-side hazard (keyed structures need prev/curr/next).
    pub const INS2: usize = 2;
    /// First remove-side operation hazard (paper `hp3`).
    pub const REM0: usize = 3;
    /// Second remove-side operation hazard (paper `hp4`).
    pub const REM1: usize = 4;
    /// Third remove-side hazard (keyed structures).
    pub const REM2: usize = 5;
    /// Descriptor hazard set by the `read` operation before helping
    /// (the paper's `hpd`, line D35).
    pub const DESC: usize = 6;
    /// Helper-adopted protection of the word-1 allocation (line D3).
    pub const HELP1: usize = 7;
    /// Helper-adopted protection of the word-2 allocation (line D3).
    pub const HELP2: usize = 8;
    /// Base of the CASN helper protections (extension; one per entry).
    pub const KCAS0: usize = 9;
    /// Number of CASN helper slots.
    pub const KCAS_COUNT: usize = 7;
    /// Base of the composition engine's per-entry protections. A k-stage
    /// composition (k > 2) runs several same-role operations nested inside
    /// one another, and the *n*-th insert's INS0–INS2 publications would
    /// overwrite the (n−1)-th insert's (likewise nested removes and REM*);
    /// the engine therefore hands each captured entry's allocation off to
    /// its own ENTRY slot at capture time, keeping every entry word
    /// protected until the commit resolves. Disjoint from the KCAS* range:
    /// ENTRY slots belong to the *initiating* thread's composition, KCAS*
    /// to the same thread's *helping* of foreign CASNs (a `read` inside a
    /// nested operation can help a foreign CASN mid-composition).
    pub const ENTRY0: usize = 16;
    /// Number of engine entry slots (one per possible CASN entry).
    pub const ENTRY_COUNT: usize = 6;
}

/// Hazard slots per registered thread.
pub const SLOTS_PER_THREAD: usize = 22;

/// One thread's hazard slots, cache-line padded. Slots are among the
/// hottest written words in the system (several stores per structure
/// operation); before padding, neighbouring threads' banks shared lines in
/// one flat array and every hazard publication invalidated other threads'
/// cached banks. The alignment keeps each bank on its own aligned
/// prefetch-pairs of lines (`22 × 8 = 176` bytes, padded to 256 by the
/// alignment); the hot slots (INS*/REM*/DESC) all sit in the first pair.
#[repr(align(128))]
struct SlotBank {
    slots: [AtomicUsize; SLOTS_PER_THREAD],
}

static SLOTS: [SlotBank; MAX_THREADS] = [const {
    SlotBank {
        slots: [const { AtomicUsize::new(0) }; SLOTS_PER_THREAD],
    }
}; MAX_THREADS];

/// Total allocations handed to [`retire`]. Padded: bumped on every retire
/// by every thread; must not share a line with `RECLAIMED_TOTAL` (bumped in
/// scans) or the orphan head.
static RETIRED_TOTAL: CachePadded<AtomicUsize> = CachePadded::new(AtomicUsize::new(0));
/// Total retired allocations whose reclaimer has run. Padded as above.
static RECLAIMED_TOTAL: CachePadded<AtomicUsize> = CachePadded::new(AtomicUsize::new(0));

/// A retired allocation awaiting reclamation.
struct Retired {
    ptr: *mut u8,
    reclaim: unsafe fn(*mut u8),
}

// Retired pointers are only dereferenced by their reclaimer; moving the
// records between threads (orphan list) is safe because reclamation runs at
// most once and the pointee is unreachable except through this record.
unsafe impl Send for Retired {}

/// A batch of retired records abandoned by an exiting thread, linked into
/// the lock-free orphan stack.
struct OrphanBatch {
    items: Vec<Retired>,
    next: *mut OrphanBatch,
}

/// Retire batches abandoned by exited threads; adopted wholesale by the
/// next scan. A Treiber stack of whole batches instead of the former
/// `Mutex<Vec<_>>`: thread exit publishes its entire leftover list with one
/// CAS, and adoption detaches the whole stack with one `swap` — no lock,
/// no ABA (nodes are only ever popped all-at-once). Padded: the head is
/// written by every exiting thread and every scanning thread.
static ORPHANS: CachePadded<AtomicPtr<OrphanBatch>> =
    CachePadded::new(AtomicPtr::new(std::ptr::null_mut()));

/// Push a batch of orphaned retirees (no-op for an empty batch).
fn orphans_push(items: Vec<Retired>) {
    if items.is_empty() {
        return;
    }
    let node = Box::into_raw(Box::new(OrphanBatch {
        items,
        next: std::ptr::null_mut(),
    }));
    // Acquire on failure/entry is not needed (we never read through `head`
    // before publishing); Release on success publishes `items` to adopters.
    let mut head = ORPHANS.load(Ordering::Relaxed);
    loop {
        // Safety: `node` is exclusively ours until the CAS succeeds.
        unsafe { (*node).next = head };
        match ORPHANS.compare_exchange_weak(head, node, Ordering::Release, Ordering::Relaxed) {
            Ok(_) => return,
            Err(h) => head = h,
        }
    }
}

/// Detach and drain every orphan batch into `list`. One atomic `swap`; the
/// detached chain is exclusively owned, so no ABA hazard exists.
fn orphans_adopt(list: &mut Vec<Retired>) {
    // Acquire pairs with the Release push: the batch contents are visible.
    let mut node = ORPHANS.swap(std::ptr::null_mut(), Ordering::Acquire);
    while !node.is_null() {
        // Safety: the swap made the whole chain exclusively ours.
        let mut batch = unsafe { Box::from_raw(node) };
        list.append(&mut batch.items);
        node = batch.next;
    }
}

struct ThreadReclaim {
    pending: Vec<Retired>,
}

thread_local! {
    static RECLAIM: Cell<*mut ThreadReclaim> = const { Cell::new(std::ptr::null_mut()) };
}

fn with_reclaim<R>(f: impl FnOnce(&mut ThreadReclaim) -> R) -> R {
    RECLAIM.with(|cell| {
        let mut p = cell.get();
        if p.is_null() {
            p = Box::into_raw(Box::new(ThreadReclaim {
                pending: Vec::new(),
            }));
            cell.set(p);
            // Tear down *before* the thread id is released (lfc-runtime runs
            // hooks ahead of freeing the id), so the slot bank cannot be
            // adopted by a new thread while we still use it.
            on_thread_exit(Box::new(move || {
                RECLAIM.with(|c| c.set(std::ptr::null_mut()));
                // Safety: pointer was uniquely created above; hook runs once.
                let mut tr = unsafe { Box::from_raw(p) };
                // One last scan attempt, then park leftovers on the orphan
                // stack as a single batch (one CAS, however many remain).
                scan_list(&mut tr.pending);
                orphans_push(std::mem::take(&mut tr.pending));
            }));
        }
        // Safety: exclusive to this thread; never aliased across the closure.
        f(unsafe { &mut *p })
    })
}

/// A cheap per-thread handle to the hazard domain.
///
/// `Guard` is `Copy`; it does not clear slots on drop. Operations own fixed
/// slot roles (see [`slot`]) and clear them explicitly.
#[derive(Clone, Copy, Debug)]
pub struct Guard {
    tid: u16,
}

/// Obtain the current thread's guard, registering the thread on first use.
pub fn pin() -> Guard {
    Guard { tid: current_tid() }
}

impl Guard {
    /// This thread's dense id (used for descriptor marking).
    pub fn tid(&self) -> u16 {
        self.tid
    }

    #[inline]
    fn slot_ref(&self, idx: usize) -> &'static AtomicUsize {
        debug_assert!(idx < SLOTS_PER_THREAD);
        &SLOTS[self.tid as usize].slots[idx]
    }

    /// Publish `addr` in slot `idx`.
    ///
    /// SeqCst (audited, required): this store and the caller's subsequent
    /// validation load form the Michael-algorithm Dekker pair against a
    /// scanner's (collect → free) sequence. Release would allow the
    /// validation load to be satisfied before the slot store is visible,
    /// and a concurrent scan could then miss the protection and free the
    /// allocation under the reader.
    #[inline]
    pub fn set(&self, idx: usize, addr: usize) {
        self.slot_ref(idx).store(addr, Ordering::SeqCst);
    }

    /// Clear slot `idx`.
    ///
    /// Release (relaxed from SeqCst): clearing only *ends* a protection. It
    /// must be ordered after our final reads of the protected allocation —
    /// release gives exactly that — but needs no store-load fence: seeing
    /// the clear "late" merely delays reclamation, and a scanner that sees
    /// it early synchronizes-with this store before freeing. On x86 this
    /// turns an `mfence`/`xchg` into a plain store on one of the hottest
    /// paths in the system (every structure operation clears its slots).
    #[inline]
    pub fn clear(&self, idx: usize) {
        self.slot_ref(idx).store(0, Ordering::Release);
    }

    /// Current value of slot `idx` (diagnostics/tests). Acquire: pairs with
    /// `set`/`clear`; diagnostics never race reclamation decisions.
    pub fn get(&self, idx: usize) -> usize {
        self.slot_ref(idx).load(Ordering::Acquire)
    }

    /// Set-and-validate loop: publishes the value returned by `load`, then
    /// re-runs `load` until it observes the same value, guaranteeing the
    /// protection was visible before the allocation could have been freed.
    #[inline]
    pub fn protect(&self, idx: usize, load: impl Fn() -> usize) -> usize {
        let mut cur = load();
        loop {
            self.set(idx, cur);
            let again = load();
            if again == cur {
                return cur;
            }
            cur = again;
        }
    }
}

/// Hand an unlinked allocation to the domain for deferred reclamation.
///
/// # Safety
///
/// * `ptr` must point to a live allocation that `reclaim` can free exactly
///   once.
/// * The allocation must already be unlinked per the retire contract in the
///   crate docs: any thread that subsequently reaches it through shared
///   memory must fail its hazard validation.
pub unsafe fn retire(ptr: *mut u8, reclaim: unsafe fn(*mut u8)) {
    RETIRED_TOTAL.fetch_add(1, Ordering::Relaxed);
    if thread_is_exiting() {
        // Thread-exit fallback: park the record on the orphan stack; the
        // next scan by any live thread adopts it.
        orphans_push(vec![Retired { ptr, reclaim }]);
        return;
    }
    with_reclaim(|tr| {
        tr.pending.push(Retired { ptr, reclaim });
        if tr.pending.len() >= scan_threshold() {
            scan_list(&mut tr.pending);
        }
    });
}

fn scan_threshold() -> usize {
    (2 * SLOTS_PER_THREAD * registered_high_water().max(1)).max(128)
}

/// Collect every currently protected address.
fn collect_hazards() -> HashSet<usize> {
    // SeqCst fence (audited, required): unlinking stores are AcqRel CASes
    // (`DAtomic::cas_word`), which do not participate in the SC total
    // order, so the slot loads below being SeqCst is not by itself enough
    // to order them after the unlink. The fence restores the Dekker: for
    // any reader, either its validation load follows this fence in the SC
    // order — then (C++17 atomics.order p6, write sequenced-before an SC
    // fence that precedes an SC load) it observes the unlink and fails
    // validation — or its SC slot store precedes the validation load and
    // hence this fence in the SC order, and the slot loads below see the
    // hazard. Cold path: one fence per scan, not per retire.
    std::sync::atomic::fence(Ordering::SeqCst);
    let hw = registered_high_water();
    let mut set = HashSet::with_capacity(hw * 4);
    for bank in SLOTS.iter().take(hw) {
        for s in &bank.slots {
            // SeqCst (audited, required): the scanner's side of the Dekker
            // pair with `Guard::set` — together with the fence above these
            // loads are ordered after the retiring thread's unlinking
            // store, so any reader that could still acquire the pointer
            // has its hazard visible here.
            let v = s.load(Ordering::SeqCst);
            if v != 0 {
                set.insert(v);
            }
        }
    }
    set
}

/// Reclaim everything in `list` that no hazard protects; retain the rest.
fn scan_list(list: &mut Vec<Retired>) {
    // Adopt orphans so abandoned garbage cannot accumulate forever.
    orphans_adopt(list);
    let hazards = collect_hazards();
    let pending = std::mem::take(list);
    for r in pending {
        if hazards.contains(&(r.ptr as usize)) {
            list.push(r);
        } else {
            RECLAIMED_TOTAL.fetch_add(1, Ordering::Relaxed);
            // Safety: unlinked per the retire contract and unprotected now.
            unsafe { (r.reclaim)(r.ptr) };
        }
    }
}

/// Force a reclamation attempt on the current thread's retire list (and the
/// orphan list). Primarily for tests and shutdown paths.
pub fn flush() {
    if thread_is_exiting() {
        let mut list = Vec::new();
        scan_list(&mut list);
        orphans_push(list);
        return;
    }
    with_reclaim(|tr| scan_list(&mut tr.pending));
}

/// Number of retired-but-not-yet-reclaimed allocations (process-wide).
pub fn pending_retired() -> usize {
    RETIRED_TOTAL
        .load(Ordering::Relaxed)
        .saturating_sub(RECLAIMED_TOTAL.load(Ordering::Relaxed))
}

/// (retired, reclaimed) totals since process start.
pub fn stats() -> (usize, usize) {
    (
        RETIRED_TOTAL.load(Ordering::Relaxed),
        RECLAIMED_TOTAL.load(Ordering::Relaxed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as Counter;

    static DROPS: Counter = Counter::new(0);

    unsafe fn reclaim_box_u64(p: *mut u8) {
        drop(unsafe { Box::from_raw(p as *mut u64) });
        DROPS.fetch_add(1, Ordering::Relaxed);
    }

    #[test]
    fn protect_returns_loaded_value() {
        let g = pin();
        let word = AtomicUsize::new(0xAB00);
        let v = g.protect(slot::INS0, || word.load(Ordering::Relaxed));
        assert_eq!(v, 0xAB00);
        assert_eq!(g.get(slot::INS0), 0xAB00);
        g.clear(slot::INS0);
        assert_eq!(g.get(slot::INS0), 0);
    }

    #[test]
    fn protect_follows_moving_target() {
        // load() returns a different value the first few calls; protect must
        // settle on a validated one.
        let g = pin();
        let calls = Counter::new(0);
        let v = g.protect(slot::INS1, || {
            let c = calls.fetch_add(1, Ordering::Relaxed);
            if c < 3 {
                0x1000 + c
            } else {
                0x2000
            }
        });
        assert_eq!(v, 0x2000);
        g.clear(slot::INS1);
    }

    #[test]
    fn unprotected_retire_reclaims_on_flush() {
        let before = DROPS.load(Ordering::Relaxed);
        let p = Box::into_raw(Box::new(7u64)) as *mut u8;
        unsafe { retire(p, reclaim_box_u64) };
        flush();
        assert!(DROPS.load(Ordering::Relaxed) > before);
    }

    #[test]
    fn protected_retire_is_deferred_until_cleared() {
        let g = pin();
        let p = Box::into_raw(Box::new(9u64)) as *mut u8;
        g.set(slot::REM0, p as usize);
        unsafe { retire(p, reclaim_box_u64) };
        flush();
        // Still protected: must not have been freed. Read through it.
        assert_eq!(unsafe { *(p as *mut u64) }, 9);
        g.clear(slot::REM0);
        flush();
        // Now it must be gone (we cannot read it; rely on counters).
        assert!(!pending_retired_contains(p));
    }

    fn pending_retired_contains(_p: *mut u8) -> bool {
        // There is no address-level query; this helper documents intent. The
        // deferred/reclaimed behaviour is asserted via the protected read
        // above and the drop counters in other tests.
        false
    }

    #[test]
    fn threshold_scan_bounds_garbage() {
        // Retire far more than the threshold; pending must stay bounded.
        for _ in 0..10_000 {
            let p = Box::into_raw(Box::new(1u64)) as *mut u8;
            unsafe { retire(p, reclaim_box_u64) };
        }
        flush();
        assert!(
            pending_retired() < 4 * scan_threshold(),
            "pending {} should be bounded by a small multiple of the threshold {}",
            pending_retired(),
            scan_threshold()
        );
    }

    #[test]
    fn orphans_from_dead_threads_are_adopted() {
        let before = DROPS.load(Ordering::Relaxed);
        std::thread::spawn(|| {
            // Protect our own retired allocation so the exit-scan cannot free
            // it and it lands on the orphan list... except slots are cleared
            // only by us; instead protect with a *live* main-thread slot.
            let p = Box::into_raw(Box::new(3u64)) as *mut u8;
            unsafe { retire(p, reclaim_box_u64) };
        })
        .join()
        .unwrap();
        // The spawned thread's exit hook scans; if anything was left it is on
        // the orphan list and this flush adopts it.
        flush();
        assert!(DROPS.load(Ordering::Relaxed) > before);
    }

    #[test]
    fn orphan_batches_from_many_dead_threads_are_all_reclaimed() {
        // Several threads exit while their retirees are pinned by a live
        // hazard, so each exit parks one batch on the orphan stack. After
        // the hazard clears, a single scan must adopt *every* batch and
        // reclaim every orphaned allocation (the eventual-reclamation
        // guarantee of the lock-free orphan path).
        const THREADS: usize = 8;
        const PER_THREAD: usize = 10;
        let _g = pin();
        let pins: Vec<*mut u8> = (0..THREADS * PER_THREAD)
            .map(|_| Box::into_raw(Box::new(11u64)) as *mut u8)
            .collect();
        let before = stats();
        std::thread::scope(|sc| {
            for t in 0..THREADS {
                let chunk: Vec<usize> = pins[t * PER_THREAD..(t + 1) * PER_THREAD]
                    .iter()
                    .map(|p| *p as usize)
                    .collect();
                sc.spawn(move || {
                    // Register, then retire from inside the exit hook so the
                    // records take the orphan path deterministically.
                    lfc_runtime::on_thread_exit(Box::new(move || {
                        for addr in chunk {
                            unsafe { retire(addr as *mut u8, reclaim_box_u64) };
                        }
                    }));
                });
            }
        });
        // All threads exited; their retirees sit in orphan batches. A
        // flush adopts and reclaims them — but a concurrently running
        // sibling test's flush may adopt some batches into its own pending
        // list first, so reclamation is *eventual*: keep flushing until
        // the count arrives (sibling threads reclaim adopted orphans no
        // later than their own exit scan).
        let target = before.1 + THREADS * PER_THREAD;
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while stats().1 < target && std::time::Instant::now() < deadline {
            flush();
            std::thread::yield_now();
        }
        let after = stats();
        assert!(
            after.1 >= target,
            "all {} orphaned retirees reclaimed ({} -> {})",
            THREADS * PER_THREAD,
            before.1,
            after.1
        );
    }

    #[test]
    fn cross_thread_protection_is_respected() {
        // Main thread protects; worker retires + flushes; object must survive.
        let g = pin();
        let p = Box::into_raw(Box::new(0xFEEDu64)) as *mut u8;
        g.set(slot::INS2, p as usize);
        let pv = p as usize;
        std::thread::spawn(move || {
            let p = pv as *mut u8;
            unsafe { retire(p, reclaim_box_u64) };
            flush();
        })
        .join()
        .unwrap();
        // Worker exited; its leftovers are orphaned. We still hold the hazard.
        assert_eq!(unsafe { *(p as *mut u64) }, 0xFEED);
        g.clear(slot::INS2);
        flush();
    }

    #[test]
    fn guard_is_copy_and_stable() {
        let a = pin();
        let b = pin();
        assert_eq!(a.tid(), b.tid());
        let c = a;
        assert_eq!(c.tid(), a.tid());
    }

    #[test]
    fn stats_monotone() {
        let (r0, c0) = stats();
        let p = Box::into_raw(Box::new(1u64)) as *mut u8;
        unsafe { retire(p, reclaim_box_u64) };
        flush();
        let (r1, c1) = stats();
        assert!(r1 > r0);
        assert!(c1 >= c0);
    }
}
