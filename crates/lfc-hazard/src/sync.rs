//! Crate-local virtual-atomics facade: re-exports
//! [`lfc_runtime::sync`] (see there). Every protocol atomic in this crate
//! — hazard slot banks, epoch slots, the global epoch, the orphan stack —
//! must import from here, never from `std` directly.

pub use lfc_runtime::sync::*;
