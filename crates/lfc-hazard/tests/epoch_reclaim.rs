//! Unified-reclamation tests: epoch-batched protection, its interaction
//! with hazard slots, and the multi-thread traverse-while-retiring stress
//! (`--ignored stress`, run release-mode by CI).

use lfc_hazard::{advance_epoch, flush, min_active_epoch, pin, pin_op, retire, slot};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Flush until `cond` holds or the deadline passes (epoch reclamation is
/// deferred while any reader — including sibling tests — is pinned).
fn flush_until(cond: impl Fn() -> bool) -> bool {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while !cond() && std::time::Instant::now() < deadline {
        flush();
        std::thread::yield_now();
    }
    cond()
}

macro_rules! counted_reclaimer {
    ($counter:ident, $reclaim:ident) => {
        static $counter: AtomicUsize = AtomicUsize::new(0);
        unsafe fn $reclaim(p: *mut u8) {
            drop(unsafe { Box::from_raw(p as *mut u64) });
            $counter.fetch_add(1, Ordering::SeqCst);
        }
    };
}

#[test]
fn op_guard_publishes_and_clears_epoch() {
    let _g = pin_op();
    let m = min_active_epoch().expect("our own epoch must be visible");
    assert!(m >= 1);
    // Nested entries share the outermost epoch.
    let inner = pin_op();
    assert!(min_active_epoch().unwrap() <= m);
    drop(inner);
    assert!(
        min_active_epoch().is_some(),
        "outermost epoch survives nested exit"
    );
}

#[test]
fn retire_under_own_epoch_is_deferred() {
    counted_reclaimer!(DROPS, reclaim);
    let p = Box::into_raw(Box::new(5u64)) as *mut u8;
    let addr = p as usize;
    {
        let _g = pin_op();
        unsafe { retire(p, reclaim) };
        // Our own epoch pins the record (it is tagged at our generation or
        // later): no number of flushes may free it while we are pinned.
        for _ in 0..4 {
            flush();
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 0);
        // Read through the pointer: must still be alive.
        assert_eq!(unsafe { *(addr as *const u64) }, 5);
    }
    assert!(
        flush_until(|| DROPS.load(Ordering::SeqCst) == 1),
        "retiree must be reclaimed once the epoch exits"
    );
}

/// The PR 3 acceptance property: a block whose only protection is an
/// ENTRY/HELP hazard slot is never freed by an epoch-bin sweep, no matter
/// how far the global epoch advances past every quiesced reader.
#[test]
fn entry_hazard_blocks_epoch_sweep() {
    counted_reclaimer!(DROPS, reclaim);
    let g = pin();
    let p = Box::into_raw(Box::new(0xC0FFEEu64)) as *mut u8;
    let addr = p as usize;
    // Promote as the composition engine does at capture time (no epoch
    // active afterwards — the hazard is the block's only protection).
    g.promote(slot::ENTRY0, addr);
    unsafe { retire(p, reclaim) };
    for _ in 0..5 {
        advance_epoch();
        flush();
    }
    // Epochs have advanced far beyond every (non-existent) reader; the
    // hazard alone must have kept the block.
    assert_eq!(DROPS.load(Ordering::SeqCst), 0);
    assert_eq!(unsafe { *(addr as *const u64) }, 0xC0FFEE);
    g.clear(slot::ENTRY0);
    assert!(
        flush_until(|| DROPS.load(Ordering::SeqCst) == 1),
        "cleared hazard must allow reclamation"
    );
}

#[test]
fn forced_advance_is_monotonic() {
    let e0 = lfc_hazard::epoch_now();
    let e1 = advance_epoch();
    assert!(e1 > e0);
    assert!(lfc_hazard::epoch_now() >= e1);
}

/// Threads traverse a shared pool of boxes through `pin_op` epochs while a
/// writer continuously swaps in replacements and retires the old blocks.
/// Every retired block must (a) stay readable and untorn while any reader
/// can hold it, and (b) be dropped once the threads quiesce and scans run.
#[test]
#[ignore = "stress: run with --release -- --ignored stress"]
fn stress_traversal_while_retiring() {
    const READERS: usize = 3;
    const SWAPS: usize = 40_000;
    const SLOTS: usize = 16;

    static STRESS_DROPS: AtomicUsize = AtomicUsize::new(0);
    unsafe fn reclaim_pair(p: *mut u8) {
        drop(unsafe { Box::from_raw(p as *mut (u64, u64)) });
        STRESS_DROPS.fetch_add(1, Ordering::SeqCst);
    }
    fn pair_box(v: u64) -> usize {
        // Invariant readers check: .1 is always !.0.
        Box::into_raw(Box::new((v, !v))) as usize
    }

    let created = AtomicUsize::new(SLOTS);
    let slots: Vec<AtomicUsize> = (0..SLOTS)
        .map(|i| AtomicUsize::new(pair_box(i as u64)))
        .collect();
    let stop = AtomicUsize::new(0);

    std::thread::scope(|sc| {
        for _ in 0..READERS {
            let slots = &slots;
            let stop = &stop;
            sc.spawn(move || {
                while stop.load(Ordering::Relaxed) == 0 {
                    let _g = pin_op();
                    for s in slots {
                        let p = s.load(Ordering::Acquire) as *const (u64, u64);
                        // Safety: the block was reachable inside our epoch;
                        // the unified domain must keep it alive.
                        let a = unsafe { (*p).0 };
                        let b = unsafe { (*p).1 };
                        assert_eq!(b, !a, "torn or reclaimed block observed");
                    }
                }
            });
        }
        {
            let slots = &slots;
            let created = &created;
            let stop = &stop;
            sc.spawn(move || {
                for i in 0..SWAPS {
                    let idx = i % SLOTS;
                    let fresh = pair_box((SLOTS + i) as u64);
                    created.fetch_add(1, Ordering::Relaxed);
                    let old = slots[idx].swap(fresh, Ordering::AcqRel);
                    // Safety: `old` is unlinked (no new traversal can load
                    // it from the slot) and freed exactly once here.
                    unsafe { retire(old as *mut u8, reclaim_pair) };
                }
                stop.store(1, Ordering::Relaxed);
            });
        }
    });

    // Tear down the survivors.
    for s in &slots {
        unsafe { retire(s.load(Ordering::Relaxed) as *mut u8, reclaim_pair) };
    }
    let total = created.load(Ordering::Relaxed);
    assert!(
        flush_until(|| STRESS_DROPS.load(Ordering::SeqCst) == total),
        "every retired block must drop after flush: {}/{}",
        STRESS_DROPS.load(Ordering::SeqCst),
        total
    );
}
