//! Edge cases of the PR 6 ejection ladder (EJ mark → zombie promotion →
//! birth-partitioned divert), exercised straight against the hazard domain:
//!
//! * the full R1→Z→divert flow against a genuinely parked reader,
//! * the eject-then-exit race (owner exits instead of restarting — the
//!   exit store doubles as the acknowledgement),
//! * nested `pin_op` under ejection (only the outermost restarts),
//! * detaching a thread whose slot went through ejection,
//! * a single-threaded Miri-safe smoke of the self-ejection path.
//!
//! Every test mutates the process-global stall policy, so they serialize
//! on a mutex and restore `StallPolicy::DEFAULT` before releasing it.

use lfc_hazard::{
    advance_epoch, birth_era, configure_stall_policy, diverted_count, ejection_stats, flush,
    pin_op, retire_with, RetireInfo, StallPolicy,
};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

static LOCK: Mutex<()> = Mutex::new(());

/// Zero budgets (any garbage is pressure), one-era stall and grace.
const AGGRESSIVE: StallPolicy = StallPolicy {
    stall_eras: 1,
    grace_eras: 1,
    max_retired_bytes: 0,
    max_retired_count: 0,
};

/// Policy guard: configures on entry, restores DEFAULT on drop (also on
/// panic, so a failing test cannot leak the aggressive policy).
struct Aggressive;
impl Aggressive {
    fn new() -> Self {
        configure_stall_policy(AGGRESSIVE);
        Aggressive
    }
}
impl Drop for Aggressive {
    fn drop(&mut self) {
        configure_stall_policy(StallPolicy::DEFAULT);
    }
}

static DIVERTS: AtomicUsize = AtomicUsize::new(0);
static RECLAIMS: AtomicUsize = AtomicUsize::new(0);

unsafe fn divert_block(p: *mut u8) {
    // No drop glue on u64: freeing the block is all a divert may do.
    drop(unsafe { Box::from_raw(p as *mut u64) });
    DIVERTS.fetch_add(1, Ordering::SeqCst);
}

unsafe fn reclaim_block(p: *mut u8) {
    drop(unsafe { Box::from_raw(p as *mut u64) });
    RECLAIMS.fetch_add(1, Ordering::SeqCst);
}

/// Retire a fresh block with a known birth and a divert route.
fn retire_probe() {
    let p = Box::into_raw(Box::new(0u64)) as *mut u8;
    // Safety: freed exactly once, via the domain.
    unsafe {
        retire_with(
            p,
            reclaim_block,
            RetireInfo {
                bytes: 8,
                birth: birth_era(),
                divert: Some(divert_block),
            },
        )
    };
}

fn spin_until(deadline_secs: u64, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(deadline_secs);
    while !cond() {
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::yield_now();
    }
    true
}

/// Full ladder against a parked reader: the stalled thread is EJ-marked,
/// zombie-promoted, and the garbage it pins is *diverted* (freed without
/// drop glue) rather than retained; the reader then restarts cleanly.
#[test]
#[cfg_attr(miri, ignore = "multi-thread park loops; Miri runs the smoke")]
fn parked_reader_is_ejected_and_garbage_diverted() {
    let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let entered = AtomicBool::new(false);
    let release = AtomicBool::new(false);
    let restarted = AtomicBool::new(false);

    std::thread::scope(|sc| {
        sc.spawn(|| {
            let mut g = pin_op();
            entered.store(true, Ordering::SeqCst);
            // Park mid-"traversal" (no pointers held across the park).
            while !release.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            assert!(g.ejected(), "scan must have marked the parked slot");
            assert!(g.repin_if_ejected(), "outermost op must restart");
            assert!(!g.ejected(), "fresh era is unmarked");
            restarted.store(true, Ordering::SeqCst);
        });

        assert!(spin_until(30, || entered.load(Ordering::SeqCst)));
        let _pol = Aggressive::new();
        let (ej0, z0) = ejection_stats();
        let d0 = diverted_count();
        // Garbage retired while the reader's epoch covers it: only the
        // zombie partition (divert) can free it before the reader exits.
        retire_probe();
        assert!(
            spin_until(30, || {
                advance_epoch();
                flush();
                diverted_count() > d0
            }),
            "zombie-pinned divertable garbage must be diverted"
        );
        let (ej1, z1) = ejection_stats();
        assert!(ej1 > ej0, "parked slot must be EJ-marked");
        assert!(z1 > z0, "EJ slot past grace must be zombie-promoted");

        release.store(true, Ordering::SeqCst);
    });
    assert!(restarted.load(Ordering::SeqCst));
}

/// Eject-then-exit race: the owner finishes its operation instead of
/// restarting. The exit store (0) clobbers the mark — an implicit
/// acknowledgement — and the next entry starts from a clean slot.
#[test]
#[cfg_attr(miri, ignore = "multi-thread park loops; Miri runs the smoke")]
fn ejected_owner_may_exit_instead_of_restarting() {
    let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let entered = AtomicBool::new(false);
    let release = AtomicBool::new(false);

    std::thread::scope(|sc| {
        sc.spawn(|| {
            {
                let g = pin_op();
                entered.store(true, Ordering::SeqCst);
                while !release.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                assert!(g.ejected());
                // Drop without repin: exit is the acknowledgement.
            }
            // Re-entry after an exit-ACK must be clean.
            let mut g = pin_op();
            assert!(!g.ejected(), "exit must clear the mark");
            assert!(!g.repin_if_ejected());
        });

        assert!(spin_until(30, || entered.load(Ordering::SeqCst)));
        let _pol = Aggressive::new();
        let (ej0, _) = ejection_stats();
        retire_probe();
        assert!(
            spin_until(30, || {
                advance_epoch();
                flush();
                ejection_stats().0 > ej0
            }),
            "parked slot must be EJ-marked"
        );
        release.store(true, Ordering::SeqCst);
    });
    // With every reader gone the probe drains through the normal path
    // (reclaim or an earlier divert — either way it is freed).
    assert!(spin_until(30, || {
        advance_epoch();
        flush();
        lfc_hazard::retired_count() == 0
    }));
}

/// Detach-while-ejected: a thread rides the ladder, acknowledges by exit,
/// then detaches its tid. A successor thread reusing the slot must start
/// unmarked.
#[test]
#[cfg_attr(miri, ignore = "multi-thread park loops; Miri runs the smoke")]
fn detach_after_ejection_leaves_clean_slot() {
    let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let entered = AtomicBool::new(false);
    let release = AtomicBool::new(false);

    std::thread::scope(|sc| {
        sc.spawn(|| {
            {
                let g = pin_op();
                entered.store(true, Ordering::SeqCst);
                while !release.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                assert!(g.ejected());
            }
            // Slot is 0 (exit-ACK); hand the tid back for reuse.
            lfc_runtime::detach_thread();
        });

        assert!(spin_until(30, || entered.load(Ordering::SeqCst)));
        let _pol = Aggressive::new();
        let (ej0, _) = ejection_stats();
        retire_probe();
        assert!(
            spin_until(30, || {
                advance_epoch();
                flush();
                ejection_stats().0 > ej0
            }),
            "parked slot must be EJ-marked"
        );
        release.store(true, Ordering::SeqCst);
    });

    // A fresh thread (possibly reusing the detached tid) starts clean.
    std::thread::scope(|sc| {
        sc.spawn(|| {
            let mut g = pin_op();
            assert!(!g.ejected(), "reused slot must start unmarked");
            assert!(!g.repin_if_ejected());
        });
    });
}

/// Single-threaded smoke (Miri-safe): self-ejection through our own scans,
/// nested guard refusal, and the outermost restart.
#[test]
fn nested_pin_op_defers_restart_to_outermost() {
    let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _pol = Aggressive::new();

    let mut outer = pin_op();
    {
        let mut inner = pin_op();
        retire_probe();
        // Our own scans observe our own lagging slot.
        for _ in 0..6 {
            advance_epoch();
            flush();
        }
        assert!(inner.ejected(), "slot mark visible through any guard");
        assert!(
            !inner.repin_if_ejected(),
            "nested op must not restart (depth 2)"
        );
        assert!(inner.ejected(), "refusal must not acknowledge");
    }
    assert!(outer.ejected());
    assert!(outer.repin_if_ejected(), "outermost op restarts");
    assert!(!outer.ejected());
    drop(outer);

    // Domain drains once no reader is left.
    assert!(spin_until(30, || {
        advance_epoch();
        flush();
        lfc_hazard::retired_count() == 0
    }));
}
