//! Cross-thread interleaving tests of the epoch layer's novel orderings:
//! the `pin_op` publish/validate Dekker against the scan fence, scan-time
//! tagging (including the stale-`now` shape — an unrelated scan advancing
//! the epoch around an unlink), and the epoch-exit → promoted-hazard
//! handoff.
//!
//! Under plain `cargo test` these are small timing races; in CI's
//! model-smoke job they run under **multi-threaded Miri** with its
//! weak-memory emulation and `-Zmiri-many-seeds`, which explores distinct
//! schedules per seed — the closest available substitute for a loom model
//! (the dev mirror has no `loom`; see the deterministic interleaving tests
//! standing in for loom in `lfc-dcas`). Miri flags any use-after-free a
//! bad interleaving produces, so the assertions here only need to force
//! the dereferences.

use lfc_hazard::{advance_epoch, flush, pin, pin_op, retire, slot, stats};
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

const ITERS: usize = if cfg!(miri) { 4 } else { 300 };

static DROPS: AtomicUsize = AtomicUsize::new(0);

unsafe fn reclaim_u64(p: *mut u8) {
    drop(unsafe { Box::from_raw(p as *mut u64) });
    DROPS.fetch_add(1, Ordering::Relaxed);
}

/// Drain until every allocation this test retired has been reclaimed (a
/// concurrent sibling test may adopt orphans into its own pending list, so
/// reclamation is eventual, not immediate).
fn drain_to(target: usize) {
    while DROPS.load(Ordering::Relaxed) < target {
        flush();
        std::thread::yield_now();
    }
}

/// A reader traverses (epoch-protected acquire loads, dereference) while an
/// unlinker swings the pointer out and retires it, and a third thread runs
/// unrelated scans/advances — the interleaving family of the stale-tag
/// scenario: the advance can land between the reader's epoch validation and
/// the unlink, so the tagging scan's `now` read may be stale and only the
/// sweep max keeps the record deferred under the reader.
#[test]
fn traversal_races_unlink_retire_and_foreign_advance() {
    static PTR: AtomicPtr<u64> = AtomicPtr::new(std::ptr::null_mut());
    let mut retired = 0usize;
    for _ in 0..ITERS {
        PTR.store(Box::into_raw(Box::new(0xA11CEu64)), Ordering::Release);
        retired += 1;
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..2 {
                    let _op = pin_op();
                    let p = PTR.load(Ordering::Acquire);
                    if !p.is_null() {
                        // Must stay valid for the whole epoch even though
                        // the unlink + retire + scan can all complete
                        // concurrently. A premature free is a Miri error.
                        assert_eq!(unsafe { *p }, 0xA11CE);
                    }
                }
            });
            s.spawn(|| {
                // Unrelated scan + forced advance: moves the global epoch
                // without any happens-before edge to the unlinker's scan.
                advance_epoch();
                flush();
            });
            s.spawn(|| {
                let p = PTR.swap(std::ptr::null_mut(), Ordering::AcqRel);
                unsafe { retire(p as *mut u8, reclaim_u64) };
                flush();
                flush();
            });
        });
    }
    drain_to(retired);
}

/// A capture-style promotion handed off across the epoch exit while another
/// thread unlinks, retires, scans, and forces epoch advances: the promoted
/// ENTRY hazard alone must keep the block alive after the epoch ends (the
/// Release-exit / epochs-before-hazards sweep pairing).
#[test]
fn promotion_handoff_races_scans() {
    static PTR: AtomicPtr<u64> = AtomicPtr::new(std::ptr::null_mut());
    static PROMOTED_DROPS: AtomicUsize = AtomicUsize::new(0);
    unsafe fn reclaim_promoted(p: *mut u8) {
        drop(unsafe { Box::from_raw(p as *mut u64) });
        PROMOTED_DROPS.fetch_add(1, Ordering::Relaxed);
    }
    let mut retired = 0usize;
    for _ in 0..ITERS {
        PTR.store(Box::into_raw(Box::new(0xBEEu64)), Ordering::Release);
        retired += 1;
        std::thread::scope(|s| {
            s.spawn(|| {
                let g = pin();
                let captured = {
                    let op = pin_op();
                    let p = PTR.load(Ordering::Acquire);
                    if p.is_null() {
                        None
                    } else {
                        // Reached under the epoch: promotion is legal.
                        op.promote(slot::ENTRY0, p as usize);
                        Some(p)
                    }
                };
                // Epoch exited; only the ENTRY slot protects the block now.
                if let Some(p) = captured {
                    assert_eq!(unsafe { *p }, 0xBEE);
                    g.clear(slot::ENTRY0);
                }
            });
            s.spawn(|| {
                let p = PTR.swap(std::ptr::null_mut(), Ordering::AcqRel);
                unsafe { retire(p as *mut u8, reclaim_promoted) };
                flush();
                advance_epoch();
                flush();
            });
        });
    }
    while PROMOTED_DROPS.load(Ordering::Relaxed) < retired {
        flush();
        std::thread::yield_now();
    }
}

/// Concurrent `pin_op` entries race the gated advance in scans: every
/// published entry epoch must be visible to some scan before its records
/// free, and the domain must stay consistent (retired >= reclaimed) under
/// the churn. Exercises the re-publish loop (a scan advancing between a
/// reader's epoch load and its fence forces the validate to retry).
#[test]
fn concurrent_entries_race_the_gated_advance() {
    let (r0, c0) = stats();
    assert!(c0 <= r0);
    std::thread::scope(|s| {
        for _ in 0..3 {
            s.spawn(|| {
                for _ in 0..ITERS {
                    let _op = pin_op();
                    flush(); // scan (and maybe advance) inside an epoch
                }
            });
        }
    });
    let (r1, c1) = stats();
    assert!(
        c1 <= r1,
        "reclaimed ({c1}) must never exceed retired ({r1})"
    );
}
