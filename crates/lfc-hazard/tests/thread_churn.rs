//! Thread-churn regression (PR 8, satellite 1): threads that exit
//! **without** calling `detach_thread` must not leak their slot bank.
//!
//! Before PR 8 a thread that pinned, published a hazard and then simply
//! returned left the value in its `SLOTS` bank forever: the bank is indexed
//! by thread id, ids are reused, and nothing cleared the slots at TLS
//! teardown — so every short-lived thread could hand a phantom protection
//! (or a pinned-looking epoch) to the next claimant of its id, and the
//! reclamation scan would treat garbage addresses as protected for the
//! life of the process. PR 8 registers a tid *finalizer* (`clear_bank`)
//! the first time `pin()` runs; the finalizer is invoked from the
//! thread-exit destructor (and from corpse adoption) after the exit hooks,
//! so a reused id always starts with a pristine bank.

use lfc_hazard::{bank_is_clear, pin, pin_op, slot};
use lfc_runtime::{registered_high_water, tid_is_claimed, MAX_THREADS};

/// Thousands of short-lived threads, each leaving hazards and a pinned
/// epoch behind at exit: the id space must stay bounded and every released
/// id's bank must come back clear.
#[test]
fn churned_threads_release_clean_banks() {
    const ROUNDS: usize = 500;
    const PAR: usize = 8;
    let mut seen = std::collections::HashSet::new();
    for round in 0..ROUNDS {
        let handles: Vec<_> = (0..PAR)
            .map(|i| {
                std::thread::spawn(move || {
                    // An operation epoch AND raw hazards, all left set: the
                    // worst-behaved exit short of a kill.
                    let op = pin_op();
                    let g = pin();
                    g.set(slot::INS0, 0x1000 + (round * PAR + i) * 8);
                    g.set(slot::DESC, 0x2000 + (round * PAR + i) * 8);
                    std::mem::forget(op); // epoch slot stays pinned too
                    g.tid()
                })
            })
            .collect();
        for h in handles {
            let tid = h.join().expect("churn thread");
            // Joining a thread orders its TLS destructors before us: the
            // finalizer must already have scrubbed the bank and the id must
            // be claimable again (unless a concurrent sibling grabbed it).
            seen.insert(tid);
            if !tid_is_claimed(tid) {
                assert!(
                    bank_is_clear(tid),
                    "round {round}: released tid {tid} has a dirty bank"
                );
            }
        }
    }
    // Bounded growth: PAR concurrent threads plus whatever the test harness
    // itself registered can never approach the registry limit — before the
    // finalizer fix this assertion is irrelevant, but the dirty-bank one
    // above fires on the very first reused id.
    assert!(
        registered_high_water() < MAX_THREADS / 2,
        "high water {} for {} sequential-ish threads",
        registered_high_water(),
        ROUNDS * PAR
    );
    assert!(seen.len() <= registered_high_water());
}

/// A reused id observes no state from its previous owner even when the
/// previous owner exited mid-"operation" (hazards set, epoch pinned).
#[test]
fn reused_tid_starts_pristine() {
    for _ in 0..64 {
        let dirty_tid = std::thread::spawn(|| {
            let g = pin();
            g.set(slot::REM0, 0xbeef_0008);
            g.tid()
        })
        .join()
        .expect("dirty thread");
        // Sequential spawn: the next thread very likely reuses the lowest
        // free id. Whichever id it gets, its own bank must read clear
        // before it publishes anything.
        let (reused, was_clear) = std::thread::spawn(move || {
            let g = pin();
            let clear_before = (0..lfc_hazard::SLOTS_PER_THREAD).all(|i| g.get(i) == 0);
            (g.tid() == dirty_tid, clear_before)
        })
        .join()
        .expect("reusing thread");
        assert!(was_clear, "fresh claimant observed a dirty bank");
        if reused {
            return; // proved the interesting case
        }
    }
    panic!("id was never reused across 64 sequential spawns");
}
