//! Miri smoke of the epoch layer: single-threaded enter/exit/nesting,
//! retire-under-epoch, scan-time tagging, forced advance, and the
//! epoch→hazard promotion handoff. Runs in CI's Miri step (the
//! multi-thread paths are covered by the `epoch_reclaim` stress suite).

use lfc_hazard::{advance_epoch, epoch_now, flush, min_active_epoch, pin, pin_op, retire, slot};
use std::sync::atomic::{AtomicUsize, Ordering};

static DROPS: AtomicUsize = AtomicUsize::new(0);

unsafe fn reclaim(p: *mut u8) {
    drop(unsafe { Box::from_raw(p as *mut u64) });
    DROPS.fetch_add(1, Ordering::SeqCst);
}

#[test]
fn epoch_lifecycle_smoke() {
    // Enter / nest / exit.
    {
        let _outer = pin_op();
        assert!(min_active_epoch().is_some());
        {
            let _inner = pin_op();
            assert!(min_active_epoch().is_some());
        }
        assert!(min_active_epoch().is_some(), "nesting must not exit early");
    }
    assert_eq!(min_active_epoch(), None);

    // Retire inside an epoch: deferred; after exit: reclaimed.
    let p = Box::into_raw(Box::new(11u64)) as *mut u8;
    let addr = p as usize;
    {
        let _g = pin_op();
        unsafe { retire(p, reclaim) };
        flush();
        flush();
        assert_eq!(DROPS.load(Ordering::SeqCst), 0);
        assert_eq!(unsafe { *(addr as *const u64) }, 11);
    }
    while DROPS.load(Ordering::SeqCst) < 1 {
        flush();
    }

    // Forced advance is monotonic and safe with no readers.
    let e = epoch_now();
    assert!(advance_epoch() > e);

    // Promotion handoff: an ENTRY hazard alone survives epoch sweeps.
    let g = pin();
    let q = Box::into_raw(Box::new(17u64)) as *mut u8;
    let qaddr = q as usize;
    g.promote(slot::ENTRY0, qaddr);
    unsafe { retire(q, reclaim) };
    advance_epoch();
    flush();
    flush();
    assert_eq!(DROPS.load(Ordering::SeqCst), 1, "hazard must defer");
    assert_eq!(unsafe { *(qaddr as *const u64) }, 17);
    g.clear(slot::ENTRY0);
    while DROPS.load(Ordering::SeqCst) < 2 {
        flush();
    }
}
