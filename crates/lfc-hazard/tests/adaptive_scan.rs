//! The adaptive retire-scan threshold (PR 5): a burst of retired records
//! that a parked reader's epoch pins — the shape a hash-map resize or
//! teardown produces (thousands of dummy/segment/node records retired
//! back-to-back) — must not trigger a full scan every fixed `base`
//! retires. The trigger re-arms at twice the survivors of the last scan,
//! so scan count grows logarithmically in the burst size while the
//! records are pinned, and everything is still reclaimed promptly once
//! the reader leaves.
//!
//! Own integration binary: `scan_count()` is process-global, and sibling
//! lib tests scanning concurrently would pollute the delta.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

static DROPS: AtomicUsize = AtomicUsize::new(0);

unsafe fn reclaim_box_u64(p: *mut u8) {
    drop(unsafe { Box::from_raw(p as *mut u64) });
    DROPS.fetch_add(1, Ordering::Relaxed);
}

#[test]
fn pinned_retire_burst_scans_logarithmically() {
    const BURST: usize = 20_000;

    // Park a reader inside an operation epoch: every record the burst
    // retires gets tagged at (or folded up to) an epoch the reader's entry
    // epoch does not exceed, so no scan can free it while the reader sits.
    let entered = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let reader = {
        let (entered, release) = (entered.clone(), release.clone());
        std::thread::spawn(move || {
            let _g = lfc_hazard::pin_op();
            entered.store(true, Ordering::Release);
            while !release.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        })
    };
    while !entered.load(Ordering::Acquire) {
        std::thread::yield_now();
    }

    let scans_before = lfc_hazard::scan_count();
    let freed_before = lfc_hazard::stats().1;
    for _ in 0..BURST {
        let p = Box::into_raw(Box::new(7u64)) as *mut u8;
        // Safety: fresh allocation, reclaimed exactly once by the domain.
        unsafe { lfc_hazard::retire(p, reclaim_box_u64) };
    }
    let scans = lfc_hazard::scan_count() - scans_before;

    // Fixed-threshold behaviour would be ~BURST/base ≈ 150+ scans; the
    // geometric re-arm needs one per doubling past the base (~8). Leave
    // headroom for the base threshold racing the high-water mark.
    assert!(
        scans <= 24,
        "{scans} scans for a pinned burst of {BURST}: trigger is not adaptive"
    );
    // And the records were genuinely deferred, not freed under the reader.
    assert!(
        lfc_hazard::pending_retired() >= BURST - lfc_hazard::stats().1.saturating_sub(freed_before),
        "burst records must sit pending while the reader is parked"
    );

    // Reader leaves. The retention cap bounds how long the freeable
    // backlog may now sit: the re-arm is `min(2 × survivors, survivors +
    // 32 × base)`, so ordinary retire traffic — NO manual flush — must
    // trigger the draining scan within ~32 × base further retires, not
    // after the backlog doubles.
    release.store(true, Ordering::Release);
    reader.join().unwrap();
    const TRAFFIC: usize = 10_000; // > 32 × base for any plausible base here
    for _ in 0..TRAFFIC {
        let p = Box::into_raw(Box::new(9u64)) as *mut u8;
        // Safety: fresh allocation, reclaimed exactly once by the domain.
        unsafe { lfc_hazard::retire(p, reclaim_box_u64) };
    }
    assert!(
        DROPS.load(Ordering::Relaxed) >= BURST,
        "retention cap must drain the freeable burst through ordinary \
         retire traffic (freed {} of {BURST})",
        DROPS.load(Ordering::Relaxed)
    );

    // And the trailing traffic itself drains within a bounded number of
    // flushes (first scans may only tag adopted orphans or advance the
    // epoch).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while DROPS.load(Ordering::Relaxed) < BURST + TRAFFIC && std::time::Instant::now() < deadline {
        lfc_hazard::flush();
        std::thread::yield_now();
    }
    assert_eq!(
        DROPS.load(Ordering::Relaxed),
        BURST + TRAFFIC,
        "all records reclaimed after the reader left"
    );
}
