//! CASN — n-word compare-and-swap — for the paper's n-object move extension:
//!
//! > "Our methodology can also be easily extended to support n operations on
//! > n distinct objects, for example to create functions that remove an item
//! > from one object and insert it into n others atomically." (§8)
//!
//! The construction follows Harris, Fraser & Pratt's *A Practical Multi-word
//! Compare-and-Swap Operation* (the paper's reference \[9\]): phase 1 installs the CASN
//! descriptor into each target word with RDCSS (a restricted double-compare
//! single-swap conditioned on the operation still being undecided), phase 2
//! decides and swings every word to its new (or old) value.
//!
//! Two deliberate deviations, both in the spirit of the paper's own DCAS:
//!
//! * **Failure reporting**: the status records *which* entry failed, so the
//!   multi-move can redo only the operations from that entry onward (the
//!   generalization of FIRSTFAILED/SECONDFAILED).
//! * **Depth-1 helping**: an executor that finds a *foreign* descriptor in a
//!   target word fails its own attempt (the foreign operation has made
//!   progress, so lock-freedom is preserved) instead of helping recursively;
//!   foreign descriptors are helped through the `read` operation, whose
//!   hazard discipline is sound at depth one. Unbounded recursive helping
//!   cannot be combined with a fixed per-thread hazard-slot bank.
//!
//! # Memory safety (hazard discipline)
//!
//! * Executors reach a CASN descriptor either as its owner or through
//!   `read`, which protects it in [`slot::DESC`] and validates.
//! * Before touching any target word, a helper adopts every entry's `hp`
//!   (the allocation containing the word) into the `KCAS*` slots and then
//!   checks the status is still undecided — while undecided, the initiating
//!   move still borrows all target objects, so the allocations were alive
//!   when the slots were published (the paper's Lemma 6, generalized). If
//!   the status is already decided, the helper only fixes the single word it
//!   came through, whose allocation its caller protects.
//! * An RDCSS descriptor found in a word implies its installer is still
//!   mid-operation and therefore still holds a hazard (or ownership) of the
//!   CASN descriptor it references, so reading `status` through it is safe
//!   once the RDCSS descriptor itself is protected and validated.

use crate::atomic::DAtomic;
use crate::sync::{AtomicUsize, Ordering};
use crate::word::{self, Word};
use lfc_hazard::{slot, Guard};
use std::alloc::Layout;
use std::cell::Cell;
use std::ptr::NonNull;

/// Maximum entries in one CASN (1 remove + up to 5 insert targets). Bounded
/// by the per-thread `KCAS*` hazard slots.
pub const MAX_ENTRIES: usize = 6;

const ST_UNDECIDED: usize = 0;
const ST_SUCCEEDED: usize = 1;
const ST_FAILED_BASE: usize = 2;

/// Outcome of a CASN.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CasnResult {
    /// All words matched and were swung atomically.
    Success,
    /// Entry `i` did not match `old_i` (or was busy with a foreign
    /// operation); nothing was left changed.
    FailedAt(usize),
}

/// One CAS triple plus the helper protection for its word.
#[derive(Clone, Copy, Debug)]
pub struct CasnEntry {
    /// Target word.
    pub ptr: *const DAtomic,
    /// Expected value.
    pub old: Word,
    /// Replacement value.
    pub new: Word,
    /// Base address of the allocation containing the word (0 = none).
    pub hp: usize,
}

impl Default for CasnEntry {
    fn default() -> Self {
        CasnEntry {
            ptr: std::ptr::null(),
            old: 0,
            new: 0,
            hp: 0,
        }
    }
}

/// The CASN descriptor. Entries are immutable once published (announced via
/// the first RDCSS); only `status` is written concurrently.
#[repr(align(512))]
pub struct CasnDesc {
    entries: [CasnEntry; MAX_ENTRIES],
    count: usize,
    status: AtomicUsize,
    /// Global era at (re)allocation; see `DcasDesc::birth`.
    birth: usize,
}

// Safety: shared with helpers; see module docs for the hazard discipline.
unsafe impl Send for CasnDesc {}
unsafe impl Sync for CasnDesc {}

const CASN_LAYOUT: Layout = Layout::new::<CasnDesc>();

thread_local! {
    static CASN_POOL: crate::pool::PoolCell<CasnDesc> = const { Cell::new(std::ptr::null_mut()) };
    static RDCSS_POOL: crate::pool::PoolCell<RdcssDesc> = const { Cell::new(std::ptr::null_mut()) };
}

/// Diagnostic counters for the CASN/RDCSS pools (Relaxed; used by the
/// pooling tests asserting the steady-state hot path never falls through to
/// `lfc-alloc`). Padded like the DCAS counters.
pub mod counters {
    use lfc_runtime::CachePadded;
    use std::sync::atomic::{AtomicUsize, Ordering};

    pub(crate) static CASN_POOL_HITS: CachePadded<AtomicUsize> =
        CachePadded::new(AtomicUsize::new(0));
    pub(crate) static CASN_POOL_MISSES: CachePadded<AtomicUsize> =
        CachePadded::new(AtomicUsize::new(0));
    pub(crate) static RDCSS_POOL_HITS: CachePadded<AtomicUsize> =
        CachePadded::new(AtomicUsize::new(0));
    pub(crate) static RDCSS_POOL_MISSES: CachePadded<AtomicUsize> =
        CachePadded::new(AtomicUsize::new(0));

    /// CASN descriptor allocations served by the per-thread pool.
    pub fn casn_pool_hits() -> usize {
        CASN_POOL_HITS.load(Ordering::Relaxed)
    }

    /// CASN descriptor allocations that fell through to `lfc-alloc`.
    pub fn casn_pool_misses() -> usize {
        CASN_POOL_MISSES.load(Ordering::Relaxed)
    }

    /// RDCSS descriptor allocations served by the per-thread pool.
    pub fn rdcss_pool_hits() -> usize {
        RDCSS_POOL_HITS.load(Ordering::Relaxed)
    }

    /// RDCSS descriptor allocations that fell through to `lfc-alloc`.
    pub fn rdcss_pool_misses() -> usize {
        RDCSS_POOL_MISSES.load(Ordering::Relaxed)
    }
}

unsafe fn reclaim_casn(p: *mut u8) {
    // CasnDesc has no drop glue; recycle the block through the pool.
    // Safety: the hazard domain guarantees unreachability.
    unsafe {
        crate::pool::dealloc(
            &CASN_POOL,
            CASN_LAYOUT,
            crate::dcas::DESC_POOL_CAP,
            NonNull::new_unchecked(p as *mut CasnDesc),
        )
    };
}

/// RDCSS descriptor: install `casn_word` at `word` iff `*status` is still
/// undecided and `*word == old`.
#[repr(align(512))]
struct RdcssDesc {
    status: *const AtomicUsize,
    word: *const DAtomic,
    old: Word,
    casn_word: Word,
    /// Global era at (re)allocation; see `DcasDesc::birth`.
    birth: usize,
}

unsafe impl Send for RdcssDesc {}
unsafe impl Sync for RdcssDesc {}

const RDCSS_LAYOUT: Layout = Layout::new::<RdcssDesc>();

unsafe fn reclaim_rdcss(p: *mut u8) {
    // Safety: the hazard domain guarantees unreachability.
    unsafe {
        crate::pool::dealloc(
            &RDCSS_POOL,
            RDCSS_LAYOUT,
            crate::dcas::DESC_POOL_CAP,
            NonNull::new_unchecked(p as *mut RdcssDesc),
        )
    };
}

/// Uniquely owned, unpublished CASN descriptor.
pub struct CasnHandle {
    desc: NonNull<CasnDesc>,
}

impl std::fmt::Debug for CasnHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CasnHandle")
            .field("addr", &self.desc.as_ptr())
            .finish()
    }
}

fn reuse_casn(d: NonNull<CasnDesc>) {
    counters::CASN_POOL_HITS.fetch_add(1, Ordering::Relaxed);
    // Safety: unreachable by any other thread (pool contract).
    // Relaxed reset suffices: publication happens-before is
    // established by the phase-1 RDCSS installs, never here.
    unsafe { d.as_ref() }
        .status
        .store(ST_UNDECIDED, Ordering::Relaxed);
    // Safety: exclusively owned; entries are governed by
    // `count`, so stale triples are unreachable.
    unsafe {
        (*d.as_ptr()).count = 0;
        (*d.as_ptr()).birth = lfc_hazard::birth_era();
    };
}

fn init_casn(block: NonNull<CasnDesc>) {
    counters::CASN_POOL_MISSES.fetch_add(1, Ordering::Relaxed);
    // Safety: fresh block.
    unsafe {
        block.as_ptr().write(CasnDesc {
            entries: [CasnEntry::default(); MAX_ENTRIES],
            count: 0,
            status: AtomicUsize::new(ST_UNDECIDED),
            birth: lfc_hazard::birth_era(),
        });
    }
}

impl CasnHandle {
    /// Allocate an empty descriptor (per-thread pooled, 512-aligned).
    pub fn new() -> Self {
        let block = crate::pool::alloc(&CASN_POOL, CASN_LAYOUT, reuse_casn, init_casn);
        CasnHandle { desc: block }
    }

    /// Fallible [`new`](Self::new): surfaces allocation failure (injected
    /// at the `"dcas.casn"` site, or genuine exhaustion on the fresh-block
    /// fallthrough) instead of panicking. The site check runs before the
    /// pool so injection fires even when a pooled block would have been a
    /// guaranteed hit.
    pub fn try_new() -> Result<Self, lfc_alloc::AllocError> {
        if lfc_runtime::fault::check("dcas.casn") {
            return Err(lfc_alloc::AllocError);
        }
        let block = crate::pool::try_alloc(&CASN_POOL, CASN_LAYOUT, reuse_casn, init_casn)?;
        Ok(CasnHandle { desc: block })
    }

    fn desc(&self) -> &CasnDesc {
        // Safety: owned and initialized.
        unsafe { self.desc.as_ref() }
    }

    fn desc_mut(&mut self) -> &mut CasnDesc {
        // Safety: unpublished, uniquely owned.
        unsafe { self.desc.as_mut() }
    }

    /// Number of entries recorded so far.
    pub fn count(&self) -> usize {
        self.desc().count
    }

    /// Record entry `i` (must be `count()`); entries need not be sorted.
    pub fn set_entry(&mut self, idx: usize, ptr: &DAtomic, old: Word, new: Word, hp: usize) {
        self.set_entry_from(idx, &CasnEntry { ptr, old, new, hp });
    }

    /// Record entry `idx` from a prepared engine entry
    /// (the unified commit's K>2 dispatch, [`crate::engine`]). Crate-only:
    /// the entry's raw `ptr` is dereferenced by `commit`, so the liveness
    /// obligation stays inside the engine's `commit_entries` contract.
    pub(crate) fn set_entry_from(&mut self, idx: usize, e: &CasnEntry) {
        assert!(
            idx < MAX_ENTRIES,
            "CASN supports at most {MAX_ENTRIES} entries"
        );
        let d = self.desc_mut();
        d.entries[idx] = *e;
        d.count = d.count.max(idx + 1);
    }

    /// Publish and run the CASN as its initiator. Consumes the handle and
    /// retires the descriptor through the hazard domain (helpers may still
    /// hold it); the composition engine re-captures into a fresh pooled
    /// handle on retry, so no partial state is handed back.
    ///
    /// An RDCSS allocation failure mid-install decides the operation
    /// `FAILED_BASE + i` and reverts (see `casn_execute`); this infallible
    /// API reports it as an ordinary [`CasnResult::FailedAt`] — callers
    /// that must distinguish resource exhaustion from a mismatch use
    /// [`try_commit`](Self::try_commit).
    pub fn commit(self, g: &Guard) -> CasnResult {
        self.run(g).0
    }

    /// [`commit`](Self::commit), surfacing an RDCSS allocation failure
    /// that decided the operation as `Err` instead of a spurious
    /// `FailedAt`. Either way the operation is decided and every target
    /// word holds a raw value on return.
    pub fn try_commit(self, g: &Guard) -> Result<CasnResult, lfc_alloc::AllocError> {
        match self.run(g) {
            (_, true) => Err(lfc_alloc::AllocError),
            (r, false) => Ok(r),
        }
    }

    /// Shared commit body. The second return is true iff this executor's
    /// own allocation failure is what decided the operation.
    fn run(self, g: &Guard) -> (CasnResult, bool) {
        let addr = self.desc.as_ptr() as usize;
        let d = self.desc();
        debug_assert!(d.count >= 2, "a CASN of fewer than 2 words is a CAS");
        debug_assert_eq!(d.status.load(Ordering::Relaxed), ST_UNDECIDED);
        let cw = word::casn_word(addr);
        // Publish for dead-thread adopters before the descriptor can reach
        // any shared word; cleared only after the operation is decided, so
        // an abandonment anywhere inside leaves the slot set (crate::adopt).
        // One armed-generation load for the commit's kill sites.
        let fg = lfc_runtime::fault::gate();
        crate::adopt::announce(g.tid(), cw);
        fg.check_kill("kcas.announced");
        let out = casn_execute(d, cw, g, true);
        crate::adopt::clear_announce(g.tid());
        self.retire();
        match out {
            Ok(r) => (r, false),
            // Owner alloc failure at entry `i`, decided FAILED_BASE + i
            // and fully reverted by phase 2.
            Err(i) => (CasnResult::FailedAt(i), true),
        }
    }

    fn retire(self) {
        let birth = self.desc().birth;
        let p = self.desc.as_ptr() as *mut u8;
        std::mem::forget(self);
        // Safety: decided; stale references are resolved before their
        // holders' hazards clear (module docs). No drop glue, so zombie
        // scans may divert the block into the type-stable pool.
        unsafe {
            lfc_hazard::retire_with(
                p,
                reclaim_casn,
                lfc_hazard::RetireInfo {
                    bytes: std::mem::size_of::<CasnDesc>(),
                    birth,
                    divert: Some(reclaim_casn),
                },
            )
        };
    }
}

impl Default for CasnHandle {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for CasnHandle {
    fn drop(&mut self) {
        // An abandoning thread (injected death, `lfc_runtime::fault`) may
        // be unwinding out of `run` with the descriptor announced and
        // possibly installed; helpers and adopters still reach it, so it
        // must be leaked, never recycled. Bounded: one descriptor per
        // abandonment (DESIGN.md "Fault model").
        if lfc_runtime::fault::thread_is_abandoning() {
            return;
        }
        // Unpublished: a descriptor only becomes visible through commit.
        unsafe { reclaim_casn(self.desc.as_ptr() as *mut u8) };
    }
}

/// RDCSS after Harris et al.: returns the value seen at `word` (== `old`
/// means the conditional install succeeded or the operation was already
/// decided-and-reverted consistently).
fn rdcss(desc_word: Word, g: &Guard) -> Word {
    // Safety: caller owns the rdcss descriptor (freshly allocated below).
    let d = unsafe { &*(word::desc_addr(desc_word) as *const RdcssDesc) };
    // Safety: `word` allocations are protected by the executor (entry hp
    // adopted / owned).
    let target = unsafe { &*d.word };
    loop {
        match target.cas_val(d.old, desc_word) {
            Ok(()) => {
                rdcss_complete(d, desc_word);
                return d.old;
            }
            Err(seen) => {
                if word::kind(seen) == word::KIND_RDCSS {
                    // Some installer is mid-flight; its hazard pins both
                    // descriptors. Protect + validate, complete it, retry.
                    g.set(slot::KCAS0 + slot::KCAS_COUNT - 1, word::desc_addr(seen));
                    if target.load_word() == seen {
                        // Safety: protected + validated.
                        let other = unsafe { &*(word::desc_addr(seen) as *const RdcssDesc) };
                        rdcss_complete(other, seen);
                    }
                    g.clear(slot::KCAS0 + slot::KCAS_COUNT - 1);
                    continue;
                }
                return seen;
            }
        }
    }
}

fn rdcss_complete(d: &RdcssDesc, desc_word: Word) {
    // Safety: status points into a CASN descriptor pinned by the RDCSS
    // installer's hazard (module docs).
    // Acquire (audited): must be ordered after the RDCSS install CAS (the
    // caller's AcqRel RMW, which a later Acquire load cannot be hoisted
    // above) and pairs with the Release of the deciding status RMW. The
    // classic RDCSS argument then needs only `status`'s own modification
    // order: if we read UNDECIDED here, the conditional install is
    // permitted; a later decision re-runs `rdcss_complete` via helping.
    let undecided = unsafe { (*d.status).load(Ordering::Acquire) } == ST_UNDECIDED;
    let new = if undecided { d.casn_word } else { d.old };
    // Safety: the target word's allocation is protected by whoever reached
    // this descriptor (installer: entry hp; helper: the word it came
    // through).
    let _ = unsafe { &*d.word }.cas_word(desc_word, new);
}

/// Execute the CASN protocol. `full` executors run both phases; `!full`
/// (late helpers that found the status decided) only fix the word they came
/// through — `via` — before returning.
///
/// `Err(i)` means *this executor's* RDCSS allocation for entry `i` failed:
/// for the owner the operation is then decided `FAILED_BASE + i` and
/// reverted before returning; a helper instead bails best-effort with the
/// operation possibly still undecided (it must not decide failure for an
/// entry that may match — the owner, or the next helper, will finish).
/// Crate-visible for dead-thread adoption ([`crate::adopt`]).
pub(crate) fn casn_execute(
    d: &CasnDesc,
    casn_word: Word,
    g: &Guard,
    owner: bool,
) -> Result<CasnResult, usize> {
    let n = d.count;
    // Adopt every entry's protection before the undecided check (helpers).
    if !owner {
        for i in 0..n {
            g.set(slot::KCAS0 + i, d.entries[i].hp);
        }
    }
    // SeqCst (audited, required): for a helper this is the validation half
    // of the Dekker pair with the KCAS* hazard publications just above —
    // the same argument as the DCAS `res` load at D4 (Lemma 6,
    // generalized). Acquire would let this load be satisfied before the
    // hazard stores became visible to a reclamation scan.
    let st0 = d.status.load(Ordering::SeqCst);
    if st0 != ST_UNDECIDED && !owner {
        // Late helper: the adopted protections above cannot be validated
        // once the operation is decided (the initiator may already have
        // returned), so do not touch arbitrary words; `help_word` fixes the
        // single word the helper came through, which its caller protects.
        for i in 0..n {
            g.clear(slot::KCAS0 + i);
        }
        return Ok(decode_status(st0));
    }

    // Phase 1: install the descriptor in every word with RDCSS.
    // Acquire (audited): decisions travel through `status`'s modification
    // order; the owner needs no hazard Dekker (it owns the descriptor) and
    // helpers already paid SeqCst at `st0`.
    let mut alloc_failed = None;
    let mut status = d.status.load(Ordering::Acquire);
    if status == ST_UNDECIDED {
        'install: for i in 0..n {
            let e = &d.entries[i];
            let rd = match try_alloc_rdcss(&d.status, e, casn_word) {
                Ok(rd) => rd,
                Err(_) if owner => {
                    // Cannot install entry `i`: decide failure there (the
                    // generalization of a mismatch — nothing was or will be
                    // changed at `i`) so phase 2 reverts the installed
                    // prefix, then surface the allocation failure iff our
                    // decision stood (a concurrent helper may have decided
                    // SUCCEEDED first, in which case the operation took
                    // effect and the failure is moot).
                    let _ = d.status.compare_exchange(
                        ST_UNDECIDED,
                        ST_FAILED_BASE + i,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    );
                    alloc_failed = Some(i);
                    break 'install;
                }
                Err(_) => {
                    // Helper out of memory: it must not decide failure for
                    // an entry that may match. If the operation is still
                    // undecided, bail best-effort — the owner (or the next
                    // helper, or an adopter) retries with its own memory.
                    if d.status.load(Ordering::Acquire) == ST_UNDECIDED {
                        for j in 0..n {
                            g.clear(slot::KCAS0 + j);
                        }
                        return Err(i);
                    }
                    break 'install;
                }
            };
            let seen = rdcss(rd, g);
            retire_rdcss(rd);
            if seen == e.old {
                // Installed (or already decided; re-checked here).
                // Acquire (audited): as the phase-1 entry load.
                if d.status.load(Ordering::Acquire) != ST_UNDECIDED {
                    break 'install;
                }
                continue;
            }
            if seen == casn_word {
                continue; // another executor installed this entry
            }
            // Genuine mismatch, or a foreign descriptor occupies the word —
            // either way the entry cannot be installed now; a foreign
            // operation's presence means it made progress, so failing keeps
            // the system lock-free (depth-1 helping policy, module docs).
            // AcqRel/Acquire (audited): the decision is serialized by this
            // RMW's modification order on `status` alone, exactly as the
            // DCAS `res` CASes at D17/D24.
            let _ = d.status.compare_exchange(
                ST_UNDECIDED,
                ST_FAILED_BASE + i,
                Ordering::AcqRel,
                Ordering::Acquire,
            );
            break 'install;
        }
        // All installed (and still undecided): decide success.
        // AcqRel/Acquire (audited): as above; Release additionally orders
        // the phase-1 installs before SUCCEEDED for Acquire readers.
        let _ = d.status.compare_exchange(
            ST_UNDECIDED,
            ST_SUCCEEDED,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        // Acquire (audited): latest decision via modification order.
        status = d.status.load(Ordering::Acquire);
    }

    // Phase 2: swing every word off the descriptor.
    let succeeded = status == ST_SUCCEEDED;
    for i in 0..n {
        let e = &d.entries[i];
        // Safety: protections adopted above (helpers) or borrowed targets
        // (the initiating move still borrows all objects).
        let target = unsafe { &*e.ptr };
        let _ = target.cas_word(casn_word, if succeeded { e.new } else { e.old });
    }
    if !owner {
        for i in 0..n {
            g.clear(slot::KCAS0 + i);
        }
    }
    match alloc_failed {
        // Our allocation failure is what decided the operation (and the
        // revert above has run): report it as such.
        Some(i) if status == ST_FAILED_BASE + i => Err(i),
        _ => Ok(decode_status(status)),
    }
}

/// The shared solo-regime commit: run the `entries` CASes back to back,
/// reverting the prefix on the first mismatch. Both the DCAS fast path
/// (K=2) and the unified engine commit ([`crate::engine::commit_entries`])
/// run this exact function inside a [`lfc_runtime::solo`] section.
///
/// Sound only while a [`lfc_runtime::solo::SoloSection`] is held: no other
/// thread can observe shared memory, so the intermediate states between the
/// CASes (and between a failed CAS and its rollback) are unobservable by
/// construction — which is precisely the atomicity the descriptor protocol
/// otherwise provides.
#[inline]
pub(crate) fn solo_commit(entries: &[CasnEntry]) -> CasnResult {
    for (i, e) in entries.iter().enumerate() {
        // Safety: target allocations are kept alive by the initiating
        // operation's borrows/hazards, exactly as on the published path.
        let word = unsafe { &*e.ptr };
        if !word.cas_word(e.old, e.new) {
            for p in entries[..i].iter().rev() {
                // Safety: as above.
                let reverted = unsafe { &*p.ptr }.cas_word(p.new, p.old);
                debug_assert!(reverted, "solo-mode revert cannot be contended");
            }
            return CasnResult::FailedAt(i);
        }
    }
    CasnResult::Success
}

fn decode_status(st: usize) -> CasnResult {
    match st {
        ST_SUCCEEDED => CasnResult::Success,
        ST_UNDECIDED => unreachable!("undecided status treated as decided"),
        f => CasnResult::FailedAt(f - ST_FAILED_BASE),
    }
}

fn try_alloc_rdcss(
    status: &AtomicUsize,
    e: &CasnEntry,
    casn_word: Word,
) -> Result<Word, lfc_alloc::AllocError> {
    // Site check ahead of the pool: a pool hit cannot organically fail, so
    // this is the only way injection reaches the phase-1 install path.
    if lfc_runtime::fault::check("dcas.rdcss") {
        return Err(lfc_alloc::AllocError);
    }
    let fill = |block: NonNull<RdcssDesc>| {
        // Safety: exclusively owned (fresh or pooled — see `crate::pool`);
        // every field is overwritten, and RdcssDesc has no drop glue.
        unsafe {
            block.as_ptr().write(RdcssDesc {
                status,
                word: e.ptr,
                old: e.old,
                casn_word,
                birth: lfc_hazard::birth_era(),
            });
        }
    };
    let block = crate::pool::try_alloc(
        &RDCSS_POOL,
        RDCSS_LAYOUT,
        |d| {
            counters::RDCSS_POOL_HITS.fetch_add(1, Ordering::Relaxed);
            fill(d);
        },
        |d| {
            counters::RDCSS_POOL_MISSES.fetch_add(1, Ordering::Relaxed);
            fill(d);
        },
    )?;
    Ok(word::rdcss_word(block.as_ptr() as usize))
}

fn retire_rdcss(desc_word: Word) {
    let p = word::desc_addr(desc_word) as *mut u8;
    // Safety: the descriptor is still alive here, so `birth` is readable.
    let birth = unsafe { (*(p as *const RdcssDesc)).birth };
    // Published to helpers through the word; must go through the domain.
    // Safety: the install attempt has resolved; stale readers fail
    // validation because the word no longer holds this descriptor. No drop
    // glue, so zombie scans may divert into the type-stable pool.
    unsafe {
        lfc_hazard::retire_with(
            p,
            reclaim_rdcss,
            lfc_hazard::RetireInfo {
                bytes: std::mem::size_of::<RdcssDesc>(),
                birth,
                divert: Some(reclaim_rdcss),
            },
        );
    }
}

/// Help a CASN or RDCSS descriptor found by `read`.
///
/// # Safety
///
/// `w` must be protected by the caller's [`slot::DESC`] hazard and validated
/// as still installed in the word it was read from.
pub(crate) unsafe fn help_word(w: Word, via: &DAtomic, g: &Guard) {
    match word::kind(w) {
        word::KIND_CASN => {
            // Safety: protected + validated per the contract.
            let d = unsafe { &*(word::desc_addr(w) as *const CasnDesc) };
            // An Err means *this helper* ran out of memory mid-install and
            // the operation may still be undecided — it must leave the word
            // alone and let a better-resourced executor finish (the read
            // loop retries; OOM tests inject fail-nth, not fail-always, so
            // this cannot livelock).
            if let Ok(st) = casn_execute(d, w, g, false) {
                // The operation is decided on return, but a late helper does
                // not run phase 2 (its protections cannot be validated), and
                // even a full execution's phase 2 may predate a stale
                // re-installation. Swing the word we came through — which
                // our caller protects — off the descriptor so readers make
                // progress.
                let succeeded = matches!(st, CasnResult::Success);
                for e in &d.entries[..d.count] {
                    if std::ptr::eq(e.ptr, via as *const DAtomic) {
                        let _ = via.cas_word(w, if succeeded { e.new } else { e.old });
                        break;
                    }
                }
            }
        }
        word::KIND_RDCSS => {
            // Safety: protected + validated per the contract.
            let d = unsafe { &*(word::desc_addr(w) as *const RdcssDesc) };
            rdcss_complete(d, w);
        }
        _ => unreachable!("help_word called on a non-CASN word"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfc_hazard::pin;

    fn entryless_commit(g: &Guard, words: &[&DAtomic], olds: &[Word], news: &[Word]) -> CasnResult {
        let mut h = CasnHandle::new();
        for (i, w) in words.iter().enumerate() {
            h.set_entry(i, w, olds[i], news[i], 0);
        }
        h.commit(g)
    }

    #[test]
    fn three_word_success() {
        let g = pin();
        let a = DAtomic::new(8);
        let b = DAtomic::new(16);
        let c = DAtomic::new(24);
        let r = entryless_commit(&g, &[&a, &b, &c], &[8, 16, 24], &[80, 160, 240]);
        assert_eq!(r, CasnResult::Success);
        assert_eq!(a.read(&g), 80);
        assert_eq!(b.read(&g), 160);
        assert_eq!(c.read(&g), 240);
    }

    #[test]
    fn mid_entry_failure_reverts_everything() {
        let g = pin();
        let a = DAtomic::new(8);
        let b = DAtomic::new(16);
        let c = DAtomic::new(24);
        let r = entryless_commit(&g, &[&a, &b, &c], &[8, 99, 24], &[80, 160, 240]);
        assert_eq!(r, CasnResult::FailedAt(1));
        assert_eq!(a.read(&g), 8, "entry 0 reverted");
        assert_eq!(b.read(&g), 16);
        assert_eq!(c.read(&g), 24, "entry 2 never touched");
    }

    #[test]
    fn failure_reports_first_failing_index() {
        let g = pin();
        let a = DAtomic::new(8);
        let b = DAtomic::new(16);
        let r = entryless_commit(&g, &[&a, &b], &[0xBAD0, 0xBAD0], &[1 << 4, 2 << 4]);
        assert_eq!(r, CasnResult::FailedAt(0));
    }

    #[test]
    fn six_entries_supported() {
        let g = pin();
        let words: Vec<DAtomic> = (0..MAX_ENTRIES).map(|i| DAtomic::new(i * 8)).collect();
        let refs: Vec<&DAtomic> = words.iter().collect();
        let olds: Vec<Word> = (0..MAX_ENTRIES).map(|i| i * 8).collect();
        let news: Vec<Word> = (0..MAX_ENTRIES).map(|i| i * 8 + 8).collect();
        let r = entryless_commit(&g, &refs, &olds, &news);
        assert_eq!(r, CasnResult::Success);
        for (i, w) in words.iter().enumerate() {
            assert_eq!(w.read(&g), i * 8 + 8);
        }
    }

    #[test]
    fn contended_casn_advances_words_in_lockstep() {
        use std::sync::atomic::{AtomicUsize as C, Ordering as O};
        const THREADS: usize = 4;
        const SUCC: usize = 800;
        let words: Vec<std::sync::Arc<DAtomic>> = (0..3)
            .map(|i| std::sync::Arc::new(DAtomic::new(i * 8)))
            .collect();
        let total = std::sync::Arc::new(C::new(0));
        std::thread::scope(|sc| {
            for _ in 0..THREADS {
                let w: Vec<_> = words.to_vec();
                let total = total.clone();
                sc.spawn(move || {
                    let g = pin();
                    let mut done = 0;
                    while done < SUCC {
                        // Read word 0; derive the rest without reading them:
                        // success proves the triple held simultaneously.
                        let v0 = w[0].read(&g);
                        let mut h = CasnHandle::new();
                        h.set_entry(0, &w[0], v0, v0 + 24, 0);
                        h.set_entry(1, &w[1], v0 + 8, v0 + 32, 0);
                        h.set_entry(2, &w[2], v0 + 16, v0 + 40, 0);
                        if let CasnResult::Success = h.commit(&g) {
                            done += 1;
                            total.fetch_add(1, O::Relaxed);
                        }
                    }
                });
            }
        });
        let g = pin();
        let n = total.load(O::Relaxed);
        assert_eq!(n, THREADS * SUCC);
        assert_eq!(words[0].read(&g), 24 * n);
        assert_eq!(words[1].read(&g), 24 * n + 8);
        assert_eq!(words[2].read(&g), 24 * n + 16);
    }

    #[test]
    fn readers_help_in_flight_casn() {
        // Concurrent plain readers (via read) while CASNs run: reads must
        // only ever observe raw values, never descriptors, and the final
        // state must be consistent.
        let a = std::sync::Arc::new(DAtomic::new(0));
        let b = std::sync::Arc::new(DAtomic::new(8));
        std::thread::scope(|sc| {
            let (ar, br) = (a.clone(), b.clone());
            sc.spawn(move || {
                let g = pin();
                for _ in 0..4_000 {
                    let v = ar.read(&g);
                    let mut h = CasnHandle::new();
                    h.set_entry(0, &ar, v, v + 16, 0);
                    h.set_entry(1, &br, v + 8, v + 24, 0);
                    let _ = h.commit(&g);
                }
            });
            let (ar, br) = (a.clone(), b.clone());
            sc.spawn(move || {
                let g = pin();
                for _ in 0..40_000 {
                    let x = ar.read(&g);
                    let y = br.read(&g);
                    assert_eq!(x % 8, 0);
                    assert_eq!(y % 8, 0);
                    assert!(word::is_raw(x) && word::is_raw(y));
                }
            });
        });
        let g = pin();
        assert_eq!(b.read(&g), a.read(&g) + 8, "pair stayed in lockstep");
    }

    #[test]
    fn descriptors_are_reclaimed() {
        let g = pin();
        let a = DAtomic::new(0);
        let b = DAtomic::new(0);
        for i in 0..10_000usize {
            let v = i * 8;
            let mut h = CasnHandle::new();
            h.set_entry(0, &a, v, v + 8, 0);
            h.set_entry(1, &b, v, v + 8, 0);
            let r = h.commit(&g);
            assert_eq!(r, CasnResult::Success);
        }
        lfc_hazard::flush();
        assert!(
            lfc_hazard::pending_retired() < 20_000,
            "pending {}",
            lfc_hazard::pending_retired()
        );
    }
}
