//! Protocol-word encoding.
//!
//! Every composable linearization point is a CAS on one machine word that
//! normally holds a pointer (paper requirement 3). While a DCAS is in
//! flight the word temporarily holds a pointer to the operation's
//! descriptor, distinguished by mark bits in the pointer's low bits — the
//! technique of Harris (reference \[8\] in the paper) — and, for the second word,
//! tagged with the installing thread's id to defeat the ABA problem the
//! paper describes in §3.2.2.
//!
//! ```text
//! bits [1:0]  kind: 00 raw value, 01 DCAS descriptor,
//!                   10 CASN descriptor, 11 RDCSS descriptor
//! bits [8:2]  DCAS thread-id field: 0 = unmarked (installed at *ptr1),
//!                                   tid+1 = marked (installed at *ptr2)
//! bits [63:9] descriptor address (descriptors are 512-byte aligned)
//! ```
//!
//! Raw values must have their low two bits clear: nodes are at least
//! 8-byte-aligned heap blocks, so node pointers (and null) qualify, and
//! bit 2 of a raw value remains free as a user mark (ordered-list logical
//! deletion uses it).

/// A protocol word.
pub type Word = usize;

/// Mask selecting the kind field.
pub const KIND_MASK: Word = 0b11;
/// Raw value (node pointer / null / stamped pointer).
pub const KIND_RAW: Word = 0b00;
/// DCAS descriptor (paper Algorithm 4).
pub const KIND_DCAS: Word = 0b01;
/// CASN descriptor (n-object move extension).
pub const KIND_CASN: Word = 0b10;
/// RDCSS descriptor (substrate of CASN).
pub const KIND_RDCSS: Word = 0b11;

const TID_SHIFT: u32 = 2;
const TID_MASK: Word = 0x7F << TID_SHIFT;

/// Alignment required of all descriptor allocations.
pub const DESC_ALIGN: usize = 512;

const ADDR_MASK: Word = !(DESC_ALIGN - 1);

/// Kind field of `w`.
#[inline]
pub fn kind(w: Word) -> Word {
    w & KIND_MASK
}

/// Whether `w` is a raw value (no descriptor involved).
#[inline]
pub fn is_raw(w: Word) -> bool {
    kind(w) == KIND_RAW
}

/// Descriptor base address encoded in `w` (meaningless for raw words).
#[inline]
pub fn desc_addr(w: Word) -> usize {
    w & ADDR_MASK
}

/// Unmarked DCAS descriptor word, as installed at `*ptr1` (line D10).
#[inline]
pub fn dcas_plain(addr: usize) -> Word {
    debug_assert_eq!(addr & !ADDR_MASK, 0, "descriptor must be 512-aligned");
    addr | KIND_DCAS
}

/// Marked DCAS descriptor word for `tid`, as installed at `*ptr2`
/// (lines D13–D14).
#[inline]
pub fn dcas_marked(addr: usize, tid: u16) -> Word {
    debug_assert_eq!(addr & !ADDR_MASK, 0, "descriptor must be 512-aligned");
    debug_assert!((tid as usize) < lfc_runtime::MAX_THREADS);
    addr | KIND_DCAS | (((tid as Word) + 1) << TID_SHIFT)
}

/// Thread-id field of a DCAS descriptor word (0 means unmarked).
#[inline]
pub fn dcas_tid_field(w: Word) -> Word {
    (w & TID_MASK) >> TID_SHIFT
}

/// Whether `w` is a *marked* DCAS descriptor word (the `desc is marked`
/// test of line D5).
#[inline]
pub fn is_marked_dcas(w: Word) -> bool {
    kind(w) == KIND_DCAS && dcas_tid_field(w) != 0
}

/// CASN descriptor word.
#[inline]
pub fn casn_word(addr: usize) -> Word {
    debug_assert_eq!(addr & !ADDR_MASK, 0);
    addr | KIND_CASN
}

/// RDCSS descriptor word.
#[inline]
pub fn rdcss_word(addr: usize) -> Word {
    debug_assert_eq!(addr & !ADDR_MASK, 0);
    addr | KIND_RDCSS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_detection() {
        assert!(is_raw(0));
        assert!(is_raw(0x1000));
        assert!(!is_raw(0x1000 | KIND_DCAS));
        assert!(!is_raw(0x1000 | KIND_CASN));
        assert!(!is_raw(0x1000 | KIND_RDCSS));
    }

    #[test]
    fn plain_vs_marked() {
        let addr = 4096usize;
        let plain = dcas_plain(addr);
        assert_eq!(kind(plain), KIND_DCAS);
        assert_eq!(dcas_tid_field(plain), 0);
        assert!(!is_marked_dcas(plain));

        let marked = dcas_marked(addr, 5);
        assert!(is_marked_dcas(marked));
        assert_eq!(dcas_tid_field(marked), 6);
        assert_eq!(desc_addr(marked), addr);
        assert_eq!(desc_addr(plain), addr);
        assert_ne!(plain, marked);
    }

    #[test]
    fn distinct_tids_distinct_marks() {
        let addr = 8192usize;
        let a = dcas_marked(addr, 0);
        let b = dcas_marked(addr, 1);
        assert_ne!(a, b);
        assert_eq!(desc_addr(a), desc_addr(b));
    }

    #[test]
    fn sentinel_values_are_not_descriptor_words() {
        // res sentinels 0,1,2 must never be confused with descriptor words
        // that carry real (>= DESC_ALIGN) addresses.
        for s in [0usize, 1, 2] {
            assert_eq!(desc_addr(s), 0);
        }
        assert!(desc_addr(dcas_marked(DESC_ALIGN, 3)) >= DESC_ALIGN);
    }

    #[test]
    fn roundtrip_marked_randomized() {
        let mut rng = lfc_runtime::SmallRng::seed_from_u64(0xD0C5);
        for _ in 0..2_000 {
            let addr = (1 + rng.below(1_000_000) as usize) * DESC_ALIGN;
            let tid = rng.below(126) as u16;
            let w = dcas_marked(addr, tid);
            assert_eq!(desc_addr(w), addr);
            assert_eq!(dcas_tid_field(w), tid as usize + 1);
            assert_eq!(kind(w), KIND_DCAS);
        }
    }

    #[test]
    fn kinds_partition_randomized() {
        let mut rng = lfc_runtime::SmallRng::seed_from_u64(0xFACE);
        for _ in 0..2_000 {
            let addr = (1 + rng.below(1_000_000) as usize) * DESC_ALIGN;
            let words = [addr, dcas_plain(addr), casn_word(addr), rdcss_word(addr)];
            for (i, a) in words.iter().enumerate() {
                for (j, b) in words.iter().enumerate() {
                    if i != j {
                        assert_ne!(a, b);
                    }
                }
                assert_eq!(desc_addr(*a), addr);
            }
        }
    }
}
