//! Per-thread descriptor pools, shared by every descriptor kind in the
//! crate (DCAS, CASN and RDCSS descriptors).
//!
//! PR 1 introduced pooling for the DCAS descriptor only; the unified
//! composition engine commits through the CASN layer as well, so the pool
//! machinery is factored out here and instantiated once per descriptor
//! type. The safety argument is identical for every instantiation: a block
//! re-enters circulation **only** from (a) a handle that was never
//! published (no other thread ever learned the address), or (b) the hazard
//! domain's reclaimer, which runs only once no thread's slot protects the
//! address — exactly the point at which handing the block to a *different*
//! allocation would also have been legal.

use lfc_runtime::{on_thread_exit, thread_is_exiting};
use std::alloc::Layout;
use std::cell::Cell;
use std::ptr::NonNull;
use std::thread::LocalKey;

/// A per-thread free list of ready-to-reuse descriptor blocks.
///
/// A thread has at most a handful of descriptors logically in flight (one
/// per composed-operation attempt), but retired descriptors return in
/// scan-sized bursts; the per-type capacity keeps those bursts local
/// without hoarding.
pub(crate) struct DescPool<T> {
    free: Vec<NonNull<T>>,
}

/// The thread-local anchor a descriptor type declares for its pool.
pub(crate) type PoolCell<T> = Cell<*mut DescPool<T>>;

fn with_pool<T: 'static, R>(
    key: &'static LocalKey<PoolCell<T>>,
    layout: Layout,
    f: impl FnOnce(&mut DescPool<T>) -> R,
) -> R {
    key.with(|cell| {
        let mut p = cell.get();
        if p.is_null() {
            p = Box::into_raw(Box::new(DescPool { free: Vec::new() }));
            cell.set(p);
            on_thread_exit(Box::new(move || {
                key.with(|c| c.set(std::ptr::null_mut()));
                // Safety: created above; the hook runs once per thread.
                let pool = unsafe { Box::from_raw(p) };
                for d in pool.free {
                    // Safety: pooled blocks came from `alloc_block` with
                    // this layout and are unreachable.
                    unsafe { lfc_alloc::free_block(d.as_ptr() as *mut u8, layout) };
                }
            }));
        }
        // Safety: thread-exclusive, not re-entered.
        f(unsafe { &mut *p })
    })
}

/// Allocate a descriptor block: pool hit (handed to `reuse` to reset the
/// fields publication cares about), or a fresh block initialized by `init`.
pub(crate) fn alloc<T: 'static>(
    key: &'static LocalKey<PoolCell<T>>,
    layout: Layout,
    reuse: impl FnOnce(NonNull<T>),
    init: impl FnOnce(NonNull<T>),
) -> NonNull<T> {
    if !thread_is_exiting() {
        if let Some(d) = with_pool(key, layout, |pool| pool.free.pop()) {
            reuse(d);
            return d;
        }
    }
    let block = lfc_alloc::alloc_block(layout).cast::<T>();
    init(block);
    block
}

/// Fallible [`alloc`]: a pool hit never fails; the fresh-block fallthrough
/// surfaces `lfc-alloc`'s `AllocError` instead of panicking.
pub(crate) fn try_alloc<T: 'static>(
    key: &'static LocalKey<PoolCell<T>>,
    layout: Layout,
    reuse: impl FnOnce(NonNull<T>),
    init: impl FnOnce(NonNull<T>),
) -> Result<NonNull<T>, lfc_alloc::AllocError> {
    if !thread_is_exiting() {
        if let Some(d) = with_pool(key, layout, |pool| pool.free.pop()) {
            reuse(d);
            return Ok(d);
        }
    }
    let block = lfc_alloc::try_alloc_block(layout)?.cast::<T>();
    init(block);
    Ok(block)
}

/// Return an unreachable descriptor block to the pool (or the backing
/// allocator when the pool is full or the thread is tearing down).
///
/// # Safety
///
/// `d` must be a live block of `layout` that no thread can reach: either
/// never published, or past its hazard-domain reclamation point.
pub(crate) unsafe fn dealloc<T: 'static>(
    key: &'static LocalKey<PoolCell<T>>,
    layout: Layout,
    cap: usize,
    d: NonNull<T>,
) {
    if !thread_is_exiting() {
        let pooled = with_pool(key, layout, |pool| {
            if pool.free.len() < cap {
                pool.free.push(d);
                true
            } else {
                false
            }
        });
        if pooled {
            return;
        }
    }
    // Safety: forwarded contract; the block came from `alloc_block`.
    unsafe { lfc_alloc::free_block(d.as_ptr() as *mut u8, layout) };
}
