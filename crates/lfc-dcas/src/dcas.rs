//! The software DCAS of paper §3.2.2 / Algorithm 4.
//!
//! A DCAS attempt allocates a [`DcasDesc`], fills in the two CAS triples
//! captured at the composed linearization points, and *announces* the
//! operation by CASing `*ptr1` from `old1` to an unmarked descriptor word
//! (line D10). Helpers — threads whose `read` found the descriptor — then
//! race to install a thread-id-*marked* descriptor word at `*ptr2`
//! (lines D13–D14); the first marked word recorded in the descriptor's `res`
//! field (line D24) is the *winner*, and `*ptr2` is swung from exactly that
//! winner to `new2` (line D29), which makes the swing happen exactly once
//! even when delayed helpers re-install marked words after an ABA of `old2`
//! (the problem the paper's Lemma 3 discusses).
//!
//! Differences from Harris et al.'s MCAS that the paper claims, all present
//! here: the result reports *which* word failed, no RDCSS descriptor is
//! needed, hazard pointers are supported (the `hp1`/`hp2` fields are adopted
//! by helpers at lines D2–D3), and the uncontended case uses fewer CASes.
//!
//! # `res` state machine (tested below)
//!
//! ```text
//! UNDECIDED ──► SECONDFAILED                      (line D17)
//! UNDECIDED ──► winner marked word ──► SUCCESS    (lines D24, D30)
//! ```
//!
//! `SUCCESS` is only ever stored after both `*ptr1 → new1` and
//! `*ptr2 → new2` have happened, and a FIRSTFAILED/SECONDFAILED outcome
//! guarantees neither word was left changed by this DCAS (Lemmata 3–4).

use crate::atomic::DAtomic;
use crate::kcas::{CasnEntry, CasnResult};
use crate::sync::{AtomicUsize, Ordering};
use crate::word::{self, Word};
use lfc_hazard::{slot, Guard};
use lfc_runtime::solo;
use std::alloc::Layout;
use std::cell::Cell;
use std::ptr::NonNull;

/// `res`: operation not yet decided.
const RES_UNDECIDED: usize = 0;
/// `res`: the second word did not match `old2`.
const RES_SECONDFAILED: usize = 1;
/// `res`: both words matched and have been swung to their new values.
const RES_SUCCESS: usize = 2;

/// Outcome of a DCAS, reporting which comparison failed (a capability the
/// paper adds over Harris et al.; the move operation uses it to decide
/// whether to redo only the insert or both operations).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DcasResult {
    /// Both words were swung atomically.
    Success,
    /// `*ptr1 != old1`; nothing was changed (only reported to the initiator).
    FirstFailed,
    /// `*ptr2 != old2`; nothing was left changed.
    SecondFailed,
}

/// The DCAS descriptor (paper Algorithm 1's `DCASDesc`).
///
/// All fields except `res` are written only while the descriptor is
/// unpublished (uniquely owned) and are immutable once the announcing CAS
/// publishes it, so helpers may read them through a shared reference.
#[repr(align(512))]
pub struct DcasDesc {
    ptr1: *const DAtomic,
    old1: Word,
    new1: Word,
    /// Base address of the allocation containing `*ptr1`, adopted by helpers
    /// (paper's `hp1`). Zero when no protection is required.
    hp1: usize,
    ptr2: *const DAtomic,
    old2: Word,
    new2: Word,
    /// As `hp1`, for `*ptr2`.
    hp2: usize,
    res: AtomicUsize,
    /// Global era at (re)allocation, forwarded to `retire_with` so zombie
    /// scans can exonerate descriptors born after an ejected reader stalled.
    birth: usize,
}

// Safety: helpers on other threads read the immutable fields and CAS `res`;
// the raw pointers target `DAtomic`s whose allocations the protocol keeps
// alive (hazard adoption, lines D2–D3).
unsafe impl Send for DcasDesc {}
unsafe impl Sync for DcasDesc {}

const DESC_LAYOUT: Layout = Layout::new::<DcasDesc>();

/// Per-thread descriptor pool capacity. A thread can have at most a
/// handful of descriptors logically in flight (one per composed move
/// attempt), but retired descriptors return in scan-sized bursts; 64 keeps
/// those bursts local without hoarding.
pub(crate) const DESC_POOL_CAP: usize = 64;

thread_local! {
    static POOL: crate::pool::PoolCell<DcasDesc> = const { Cell::new(std::ptr::null_mut()) };
}

/// Allocate a descriptor: pool hit, or a fresh pool-backed block.
///
/// `DescHandle::new` on the seed path paid, per DCAS attempt: a size-class
/// lookup plus magazine pop in `lfc-alloc` and a full 9-field descriptor
/// write. The pool (see [`crate::pool`] for the shared machinery and its
/// safety argument) reduces the hit path to one `Vec::pop` and a single
/// `res` reset — the CAS triples are overwritten by `set_first` /
/// `set_second` anyway.
fn reuse_desc(d: NonNull<DcasDesc>) {
    counters::DESC_POOL_HITS.fetch_add(1, Ordering::Relaxed);
    // Safety: unreachable by any other thread (pool contract);
    // Relaxed reset is enough — publication happens-before is
    // established by the announcing CAS, never by this store.
    unsafe { d.as_ref() }
        .res
        .store(RES_UNDECIDED, Ordering::Relaxed);
    // Safety: exclusively owned (pool contract); plain store before
    // publication.
    unsafe { (*d.as_ptr()).birth = lfc_hazard::birth_era() };
    #[cfg(debug_assertions)]
    // Safety: exclusively owned; poison the triple pointers so a
    // commit without set_first/set_second trips the debug asserts.
    unsafe {
        let m = &mut *d.as_ptr();
        m.ptr1 = std::ptr::null();
        m.ptr2 = std::ptr::null();
    }
}

fn init_desc(block: NonNull<DcasDesc>) {
    counters::DESC_POOL_MISSES.fetch_add(1, Ordering::Relaxed);
    // Safety: freshly allocated, properly aligned and sized.
    unsafe {
        block.as_ptr().write(DcasDesc {
            ptr1: std::ptr::null(),
            old1: 0,
            new1: 0,
            hp1: 0,
            ptr2: std::ptr::null(),
            old2: 0,
            new2: 0,
            hp2: 0,
            res: AtomicUsize::new(RES_UNDECIDED),
            birth: lfc_hazard::birth_era(),
        });
    }
}

fn alloc_desc() -> NonNull<DcasDesc> {
    crate::pool::alloc(&POOL, DESC_LAYOUT, reuse_desc, init_desc)
}

fn try_alloc_desc() -> Result<NonNull<DcasDesc>, lfc_alloc::AllocError> {
    crate::pool::try_alloc(&POOL, DESC_LAYOUT, reuse_desc, init_desc)
}

/// Return an unreachable descriptor to the pool (or the backing allocator).
///
/// # Safety
///
/// `d` must be a live descriptor no thread can reach: either never
/// published, or past its hazard-domain reclamation point.
unsafe fn dealloc_desc(d: NonNull<DcasDesc>) {
    // Safety: forwarded contract.
    unsafe { crate::pool::dealloc(&POOL, DESC_LAYOUT, DESC_POOL_CAP, d) };
}

unsafe fn reclaim_desc(p: *mut u8) {
    // DcasDesc has no drop glue; recycle the block through the pool.
    // Safety: the hazard domain guarantees unreachability.
    unsafe { dealloc_desc(NonNull::new_unchecked(p as *mut DcasDesc)) };
}

/// Uniquely owned, unpublished descriptor.
///
/// The handle encodes the publication protocol in its API: `commit`
/// publishes and runs the DCAS as the initiator, consuming the handle and
/// retiring the descriptor if it became visible to helpers.
pub struct DescHandle {
    desc: NonNull<DcasDesc>,
}

impl std::fmt::Debug for DescHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DescHandle")
            .field("addr", &self.desc.as_ptr())
            .finish()
    }
}

impl DescHandle {
    /// Allocate a fresh descriptor (per-thread pooled, 512-aligned).
    pub fn new() -> Self {
        DescHandle { desc: alloc_desc() }
    }

    /// Fallible [`Self::new`]: `Err` when the pool is empty and the backing
    /// allocation fails (or the `dcas.desc` / `alloc.block` fault site
    /// fires).
    pub fn try_new() -> Result<Self, lfc_alloc::AllocError> {
        if lfc_runtime::fault::check("dcas.desc") {
            return Err(lfc_alloc::AllocError);
        }
        Ok(DescHandle {
            desc: try_alloc_desc()?,
        })
    }

    fn desc(&self) -> &DcasDesc {
        // Safety: uniquely owned and initialized.
        unsafe { self.desc.as_ref() }
    }

    fn desc_mut(&mut self) -> &mut DcasDesc {
        // Safety: unpublished handles are uniquely owned.
        unsafe { self.desc.as_mut() }
    }

    /// Record the first (remove-side) CAS triple. `hp1` is the base address
    /// of the allocation containing `*ptr1` (0 if none is needed).
    pub fn set_first(&mut self, ptr1: &DAtomic, old1: Word, new1: Word, hp1: usize) {
        let d = self.desc_mut();
        d.ptr1 = ptr1;
        d.old1 = old1;
        d.new1 = new1;
        d.hp1 = hp1;
    }

    /// Record the second (insert-side) CAS triple.
    pub fn set_second(&mut self, ptr2: &DAtomic, old2: Word, new2: Word, hp2: usize) {
        let d = self.desc_mut();
        d.ptr2 = ptr2;
        d.old2 = old2;
        d.new2 = new2;
        d.hp2 = hp2;
    }

    /// Record the first triple from a prepared engine entry
    /// (the unified commit's K=2 dispatch, [`crate::engine`]). Crate-only:
    /// the entry's raw `ptr` is dereferenced by `commit`, so the liveness
    /// obligation stays inside the engine's `commit_entries` contract.
    pub(crate) fn set_first_from(&mut self, e: &CasnEntry) {
        let d = self.desc_mut();
        d.ptr1 = e.ptr;
        d.old1 = e.old;
        d.new1 = e.new;
        d.hp1 = e.hp;
    }

    /// Record the second triple from a prepared engine entry.
    pub(crate) fn set_second_from(&mut self, e: &CasnEntry) {
        let d = self.desc_mut();
        d.ptr2 = e.ptr;
        d.old2 = e.old;
        d.new2 = e.new;
        d.hp2 = e.hp;
    }

    /// Address of the first word, for alias detection (a DCAS whose two
    /// words coincide can never succeed — e.g. a stack moved onto itself).
    pub fn first_word_addr(&self) -> usize {
        self.desc().ptr1 as usize
    }

    /// Publish the descriptor and run the DCAS as the initiating process.
    ///
    /// Returns the result plus a handle for the next attempt: a handle
    /// carrying the first-side triple after `FirstFailed`/`SecondFailed`
    /// (paper line M30, `new DCASDesc(desc)`), and `None` after `Success`.
    ///
    /// # Uncontended fast path
    ///
    /// In the solo regime ([`lfc_runtime::solo`]) — this thread is the only
    /// registered thread, and the registration handshake keeps it that way
    /// for the duration — no helper can observe the operation, so the
    /// descriptor is never published: the two CASes run back to back, with
    /// a revert of the first on a second-word mismatch. The intermediate
    /// state is unobservable by construction, which is exactly the
    /// atomicity the descriptor protocol exists to provide.
    pub fn commit(self, g: &Guard) -> (DcasResult, Option<DescHandle>) {
        let addr = self.desc.as_ptr() as usize;
        debug_assert_eq!(
            self.desc().res.load(Ordering::Relaxed),
            RES_UNDECIDED,
            "descriptor reuse after publication"
        );
        debug_assert!(!self.desc().ptr1.is_null() && !self.desc().ptr2.is_null());

        {
            let d = self.desc();
            // Aliased words can never succeed and take the slow path so the
            // outcome matches the published protocol (SECONDFAILED: the
            // second comparison sees the announcement, not `old2`).
            if !std::ptr::eq(d.ptr1, d.ptr2) {
                if let Some(_solo) = solo::try_enter() {
                    // The DCAS solo path is the K=2 instance of the engine's
                    // shared solo commit (`kcas::solo_commit`): run the CASes
                    // back to back, reverting on a mismatch. Safety: target
                    // allocations are kept alive by the initiating
                    // operation's borrows/hazards, as on the slow path.
                    let entries = [
                        CasnEntry {
                            ptr: d.ptr1,
                            old: d.old1,
                            new: d.new1,
                            hp: d.hp1,
                        },
                        CasnEntry {
                            ptr: d.ptr2,
                            old: d.old2,
                            new: d.new2,
                            hp: d.hp2,
                        },
                    ];
                    return match crate::kcas::solo_commit(&entries) {
                        // Never published: the handle is reused directly
                        // (its first triple is intact) or, on success,
                        // Drop recycles it straight into the pool.
                        CasnResult::Success => (DcasResult::Success, None),
                        CasnResult::FailedAt(0) => (DcasResult::FirstFailed, Some(self)),
                        CasnResult::FailedAt(_) => (DcasResult::SecondFailed, Some(self)),
                    };
                }
            }
        }

        // Announce the in-flight operation in the adoption table before
        // publication: from here until `clear_announce`, a survivor can
        // complete this DCAS on our behalf if we die
        // (`crate::adopt_dead_threads`). The kill site models exactly that
        // death.
        // One armed-generation load covers every kill site this commit
        // passes (announce, publish, and any helping it triggers).
        let fg = lfc_runtime::fault::gate();
        crate::adopt::announce(g.tid(), word::dcas_plain(addr));
        fg.check_kill("dcas.announced");
        // Safety: we own the descriptor; `dcas_run_gated` publishes it.
        let result = unsafe { dcas_run_gated(word::dcas_plain(addr), true, g, fg) };
        crate::adopt::clear_announce(g.tid());
        match result {
            DcasResult::FirstFailed => {
                // Announcement failed: never published, safe to reuse.
                (result, Some(self))
            }
            DcasResult::SecondFailed => {
                // Published (helpers may hold it): retire, hand back a fresh
                // copy of the first-side triple for the insert retry.
                let mut fresh = DescHandle::new();
                {
                    let d = self.desc();
                    let f = fresh.desc_mut();
                    f.ptr1 = d.ptr1;
                    f.old1 = d.old1;
                    f.new1 = d.new1;
                    f.hp1 = d.hp1;
                }
                self.retire();
                (result, Some(fresh))
            }
            DcasResult::Success => {
                self.retire();
                (result, None)
            }
        }
    }

    /// Publish and run the DCAS as the initiator, without the retry
    /// hand-back of [`Self::commit`]: the unified engine
    /// ([`crate::engine::commit_entries`]) re-captures its entries into a
    /// fresh pooled handle on retry, so copying the first-side triple into
    /// a new descriptor here would round-trip a pooled block per contended
    /// failure for nothing. The solo regime is likewise the engine's job
    /// (its regime 1), dispatched before this path is reached, and the
    /// engine's alias detection guarantees the two words are distinct.
    pub(crate) fn commit_engine(self, g: &Guard) -> DcasResult {
        let addr = self.desc.as_ptr() as usize;
        debug_assert_eq!(
            self.desc().res.load(Ordering::Relaxed),
            RES_UNDECIDED,
            "descriptor reuse after publication"
        );
        debug_assert!(!self.desc().ptr1.is_null() && !self.desc().ptr2.is_null());
        debug_assert!(
            !std::ptr::eq(self.desc().ptr1, self.desc().ptr2),
            "engine entries are pairwise distinct"
        );

        // Announce for adoption (see `commit`), then publish. One
        // armed-generation load gates every kill site of this commit.
        let fg = lfc_runtime::fault::gate();
        crate::adopt::announce(g.tid(), word::dcas_plain(addr));
        fg.check_kill("dcas.announced");
        // Safety: we own the descriptor; `dcas_run_gated` publishes it.
        let result = unsafe { dcas_run_gated(word::dcas_plain(addr), true, g, fg) };
        crate::adopt::clear_announce(g.tid());
        if let DcasResult::FirstFailed = result {
            // Announcement failed: never published, so Drop recycles the
            // block straight into the pool.
            drop(self);
        } else {
            // Published (helpers may hold it): through the hazard domain.
            self.retire();
        }
        result
    }

    /// Retire the (published) descriptor through the hazard domain.
    ///
    /// Uses `retire_with`: descriptors carry their allocation era so a
    /// zombie scan can exonerate ones born after the stall, and — having no
    /// drop glue — they divert straight into the type-stable pool when a
    /// zombie pins them.
    fn retire(self) {
        let birth = self.desc().birth;
        let p = self.desc.as_ptr() as *mut u8;
        std::mem::forget(self);
        // Safety: decided descriptors are unreachable except through stale
        // marked words, whose readers fail hazard validation (module docs).
        unsafe {
            lfc_hazard::retire_with(
                p,
                reclaim_desc,
                lfc_hazard::RetireInfo {
                    bytes: std::mem::size_of::<DcasDesc>(),
                    birth,
                    divert: Some(reclaim_desc),
                },
            )
        };
    }
}

impl Drop for DescHandle {
    fn drop(&mut self) {
        // An abandoning thread (injected death, `lfc_runtime::fault`) may
        // be unwinding out of `dcas_run` with the descriptor *published*:
        // recycling it here would hand helpers a reused block. Leak it —
        // the corpse's announce-table entry keeps it findable, and the
        // documented leak bound charges one descriptor per abandonment.
        if lfc_runtime::fault::thread_is_abandoning() {
            return;
        }
        // Unpublished handle dropped without commit (e.g. move aborted in
        // the remove init-phase, or a solo fast-path success): no helper
        // can know the address, so it goes straight back to the pool.
        // Safety: uniquely owned.
        unsafe { dealloc_desc(self.desc) };
    }
}

impl Default for DescHandle {
    fn default() -> Self {
        Self::new()
    }
}

/// Diagnostic counters (Relaxed; used by the false-helping ablation bench
/// and the pooling tests). Each is cache-line padded so bumping one from
/// many threads cannot false-share with the others.
pub mod counters {
    use lfc_runtime::CachePadded;
    use std::sync::atomic::{AtomicUsize, Ordering};

    pub(crate) static HELP_RUNS: CachePadded<AtomicUsize> = CachePadded::new(AtomicUsize::new(0));
    pub(crate) static STALE_MARK_REVERTS: CachePadded<AtomicUsize> =
        CachePadded::new(AtomicUsize::new(0));
    pub(crate) static DESC_POOL_HITS: CachePadded<AtomicUsize> =
        CachePadded::new(AtomicUsize::new(0));
    pub(crate) static DESC_POOL_MISSES: CachePadded<AtomicUsize> =
        CachePadded::new(AtomicUsize::new(0));

    /// Number of helper invocations of the DCAS (each is a `read` that found
    /// a descriptor and joined the protocol).
    pub fn help_runs() -> usize {
        HELP_RUNS.load(Ordering::Relaxed)
    }

    /// Number of marked-descriptor installations that had to be reverted —
    /// each one is a *false helping* episode caused by the ABA the paper's
    /// §7 discussion attributes to the stack.
    pub fn stale_mark_reverts() -> usize {
        STALE_MARK_REVERTS.load(Ordering::Relaxed)
    }

    /// Descriptor allocations served by the per-thread pool.
    pub fn desc_pool_hits() -> usize {
        DESC_POOL_HITS.load(Ordering::Relaxed)
    }

    /// Descriptor allocations that fell through to `lfc-alloc`.
    pub fn desc_pool_misses() -> usize {
        DESC_POOL_MISSES.load(Ordering::Relaxed)
    }
}

/// Help a published DCAS found in a word (non-initiator entry point).
///
/// # Safety
///
/// `desc_word` must reference a descriptor currently protected by the
/// caller's [`slot::DESC`] hazard and validated as still installed.
pub(crate) unsafe fn help(desc_word: Word, g: &Guard) {
    // Kill site at the helping boundary: a helper that dies here has
    // published nothing yet — its only obligation (the DESC hazard) stays
    // protected by its corpse bank until adoption. One armed-generation
    // load gates this and the nested `dcas.published` site.
    let fg = lfc_runtime::fault::gate();
    fg.check_kill("dcas.help");
    counters::HELP_RUNS.fetch_add(1, Ordering::Relaxed);
    // Safety: forwarded contract.
    let _ = unsafe { dcas_run_gated(desc_word, false, g, fg) };
}

/// Whether `plain`'s descriptor is currently installed at its first word
/// — adoption's publication test.
///
/// The D10 first-word install is initiator-only: [`dcas_run`] as a helper
/// assumes it already happened, installs the marked word at `*ptr2`, and
/// "commits" with the `*ptr1` swing CAS failing silently — a torn
/// half-DCAS — if the initiator in fact never published. An adopter must
/// therefore never help a corpse's *announced-but-unpublished* DCAS.
/// `*ptr1` holds `plain` exactly between D10 and the decided swing/revert,
/// and an abandoned descriptor is leaked (its address is never re-minted),
/// so a single load is a stable test: `false` means never-published or
/// already-decided, and with the initiator dead neither can change — there
/// is nothing left to complete.
///
/// # Safety
///
/// `plain`'s descriptor must be alive with its first triple recorded
/// (announce-table contract: `announce` happens after `set_first`).
pub(crate) unsafe fn dcas_is_published(plain: Word) -> bool {
    // Safety: descriptor alive per contract; `ptr1` was set before the
    // announce made `plain` visible to adopters.
    let desc = unsafe { &*(word::desc_addr(plain) as *const DcasDesc) };
    unsafe { &*desc.ptr1 }.load_word() == plain
}

fn decode(res: usize) -> DcasResult {
    match res {
        RES_SUCCESS => DcasResult::Success,
        RES_SECONDFAILED => DcasResult::SecondFailed,
        other => unreachable!("undecided res {other} treated as decided"),
    }
}

/// The DCAS protocol, lines D1–D31.
///
/// # Safety
///
/// The descriptor referenced by `desc_word` must be kept alive for the
/// duration of the call: by ownership for the initiator, by the `DESC`
/// hazard for helpers. Helpers must additionally have validated that the
/// word they came through still held `desc_word` after protecting it.
pub unsafe fn dcas_run(desc_word: Word, initiator: bool, g: &Guard) -> DcasResult {
    // Safety: forwarded contract.
    unsafe { dcas_run_gated(desc_word, initiator, g, lfc_runtime::fault::gate()) }
}

/// [`dcas_run`] with the caller's [`lfc_runtime::fault::FaultGate`]
/// snapshot, so a commit pays for the armed-generation load exactly once
/// across all its kill sites.
///
/// # Safety
///
/// As [`dcas_run`].
pub(crate) unsafe fn dcas_run_gated(
    desc_word: Word,
    initiator: bool,
    g: &Guard,
    fg: lfc_runtime::fault::FaultGate,
) -> DcasResult {
    let addr = word::desc_addr(desc_word);
    // Safety: per the function contract the descriptor is alive.
    let desc = unsafe { &*(addr as *const DcasDesc) };

    if !initiator {
        // D2–D3: adopt the initiator's protections of the two target
        // allocations before touching `*ptr1` / `*ptr2`. If `res` is still
        // undecided below, the initiator is still inside its operation and
        // its own hazards covered these allocations while we published ours
        // (paper Lemma 6); otherwise we only write through the word we were
        // validated to have come through, whose allocation our caller
        // already protects.
        g.set(slot::HELP1, desc.hp1);
        g.set(slot::HELP2, desc.hp2);
    }
    let result = dcas_body(desc, desc_word, initiator, g, fg);
    if !initiator {
        g.clear(slot::HELP1);
        g.clear(slot::HELP2);
    }
    result
}

fn dcas_body(
    desc: &DcasDesc,
    desc_word: Word,
    initiator: bool,
    g: &Guard,
    fg: lfc_runtime::fault::FaultGate,
) -> DcasResult {
    let addr = word::desc_addr(desc_word);
    let plain = word::dcas_plain(addr);
    // Safety: target words' allocations are protected per `dcas_run`'s
    // contract (initiator's operation hazards / adopted hazards above).
    let ptr1 = unsafe { &*desc.ptr1 };
    let ptr2 = unsafe { &*desc.ptr2 };

    // D4–D9: already decided — fix up the word we came through and return.
    // SeqCst (audited, required): for a helper this load is the validation
    // half of the Dekker pair with the HELP1/HELP2 hazard stores in
    // `dcas_run` — if `res` is still undecided, the initiator is still
    // inside its operation and its hazards covered the target allocations
    // while ours were published (Lemma 6). An Acquire load could be
    // satisfied before those hazard stores became visible to a scanner.
    let r0 = desc.res.load(Ordering::SeqCst);
    if r0 == RES_SUCCESS || r0 == RES_SECONDFAILED {
        finish_decided(desc, desc_word, plain, r0, ptr1, ptr2);
        return decode(r0);
    }

    // D10–D11: the initiator announces the operation. The CAS's Release
    // publishes the descriptor's (immutable) fields to every helper that
    // Acquire-reads the word.
    if initiator {
        if !ptr1.cas_word(desc.old1, plain) {
            return DcasResult::FirstFailed;
        }
        // Kill site: the initiator dies with the descriptor installed at
        // `*ptr1` and the second word untouched — the worst-case torn
        // state. Survivors complete it via `read`-helping or adoption.
        fg.check_kill("dcas.published");
    }

    // D13–D14: try to install our marked descriptor at the second word.
    let my_mark = word::dcas_marked(addr, g.tid());
    let p2set = ptr2.cas_word(desc.old2, my_mark);

    // Choose the marked word to promote as winner: ours if we installed it;
    // otherwise, if some marked form of this descriptor is installed, that
    // one (this is the D15–D16 re-check: `*ptr2` still refers to `desc`).
    let installed = if p2set {
        my_mark
    } else {
        let cur = ptr2.load_word();
        if word::is_marked_dcas(cur) && word::desc_addr(cur) == addr {
            cur
        } else {
            // D17: genuine mismatch — try to decide SECONDFAILED.
            // AcqRel/Acquire (audited): decisions are serialized by this
            // RMW's modification order on `res` alone; no cross-location
            // fence is involved. Release publishes nothing here (failure
            // changes no word), Acquire pairs with the winning side's
            // Release so the post-decision fix-ups below see its writes.
            let _ = desc.res.compare_exchange(
                RES_UNDECIDED,
                RES_SECONDFAILED,
                Ordering::AcqRel,
                Ordering::Acquire,
            );
            // Acquire (audited): pairs with the Release of whichever RMW
            // decided `res`; same-location coherence gives the latest
            // decision.
            let r = desc.res.load(Ordering::Acquire);
            if r == RES_SUCCESS {
                return DcasResult::Success; // D18–D19
            }
            if r == RES_SECONDFAILED {
                // D20–D22: revert the announcement.
                ptr1.cas_word(plain, desc.old1);
                return DcasResult::SecondFailed;
            }
            // A winner was recorded concurrently; help complete with it.
            r
        }
    };

    // D24: promote the installed marked word. While `res` is undecided the
    // second word cannot change (all competing CASes expect `old2`), so a
    // successful promotion certifies `installed` is in place — an argument
    // built on same-location coherence of `*ptr2` and the total
    // modification order of `res`, neither of which needs SeqCst.
    // AcqRel/Acquire (audited) as at D17.
    let _ = desc.res.compare_exchange(
        RES_UNDECIDED,
        installed,
        Ordering::AcqRel,
        Ordering::Acquire,
    );
    // Acquire (audited): as at D17.
    let r = desc.res.load(Ordering::Acquire);

    if r == RES_SECONDFAILED {
        // D25–D27: decision went against us; undo our installation (if any)
        // and make sure the announcement is reverted.
        if p2set && ptr2.cas_word(my_mark, desc.old2) {
            counters::STALE_MARK_REVERTS.fetch_add(1, Ordering::Relaxed);
        }
        ptr1.cas_word(plain, desc.old1);
        return DcasResult::SecondFailed;
    }
    if r == RES_SUCCESS {
        // Completed by other processes. If we installed a marked word it is
        // a stale ABA leftover (the winner's word was consumed before
        // SUCCESS was stored): revert it.
        if p2set && ptr2.cas_word(my_mark, desc.old2) {
            counters::STALE_MARK_REVERTS.fetch_add(1, Ordering::Relaxed);
        }
        return DcasResult::Success;
    }

    debug_assert!(word::is_marked_dcas(r) && word::desc_addr(r) == addr);
    let winner = r;
    if p2set && my_mark != winner {
        // We installed but lost the promotion race ("will have to change it
        // back to its old value", Lemma 3).
        if ptr2.cas_word(my_mark, desc.old2) {
            counters::STALE_MARK_REVERTS.fetch_add(1, Ordering::Relaxed);
        }
    }
    // D28–D30: complete. `*ptr1` swings from the announcement to `new1`
    // exactly once; `*ptr2` swings from exactly the winner to `new2` exactly
    // once; only then is SUCCESS published. AcqRel/Acquire (audited): the
    // Release orders both swings before SUCCESS for any Acquire reader of
    // `res`; the swings themselves are AcqRel CASes on their own words.
    ptr1.cas_word(plain, desc.new1);
    ptr2.cas_word(winner, desc.new2);
    let _ = desc
        .res
        .compare_exchange(winner, RES_SUCCESS, Ordering::AcqRel, Ordering::Acquire);
    DcasResult::Success
}

/// Lines D5–D8: the operation is decided but the word we came through still
/// held a descriptor — clean it up so readers can make progress.
fn finish_decided(
    desc: &DcasDesc,
    desc_word: Word,
    plain: Word,
    res: usize,
    ptr1: &DAtomic,
    ptr2: &DAtomic,
) {
    if word::is_marked_dcas(desc_word) {
        // Came through `*ptr2` holding a stale marked word (on SUCCESS the
        // winner was consumed before SUCCESS was stored, so whatever is
        // still installed is an ABA leftover; on SECONDFAILED every
        // installation is stale): revert it.
        if ptr2.cas_word(desc_word, desc.old2) {
            counters::STALE_MARK_REVERTS.fetch_add(1, Ordering::Relaxed);
        }
    } else if res == RES_SECONDFAILED {
        // Came through `*ptr1`: only a failed pair leaves the announcement
        // to revert (on SUCCESS `*ptr1` already holds `new1`).
        ptr1.cas_word(plain, desc.old1);
    }
}

/// Test-support hooks exposing protocol internals so the suite can exercise
/// helper paths with a deterministically stalled initiator.
#[doc(hidden)]
pub mod test_support {
    use super::*;

    /// Announce `handle` (line D10 only) and "stall": returns the plain
    /// descriptor word now installed at `*ptr1`, or gives the handle back if
    /// the announcement failed. The caller takes over the initiator's
    /// responsibility to eventually run/finish and retire the descriptor.
    pub fn announce_only(handle: DescHandle) -> Result<Word, DescHandle> {
        let addr = handle.desc.as_ptr() as usize;
        let plain = word::dcas_plain(addr);
        let d = handle.desc();
        // Safety: handle owns the descriptor; ptr1 was set by the test.
        let ptr1 = unsafe { &*d.ptr1 };
        if ptr1.cas_word(d.old1, plain) {
            std::mem::forget(handle);
            Ok(plain)
        } else {
            Err(handle)
        }
    }

    /// Run the protocol for a previously announced descriptor as if the
    /// stalled initiator resumed.
    ///
    /// # Safety
    ///
    /// `desc_word` must come from [`announce_only`] and the descriptor must
    /// not have been finished+retired yet.
    pub unsafe fn resume(desc_word: Word, g: &Guard) -> DcasResult {
        // Resuming initiator: already announced, so run as a helper but
        // translate the result for the caller.
        unsafe { dcas_run(desc_word, false, g) }
    }

    /// Retire a descriptor obtained from [`announce_only`] once decided.
    ///
    /// # Safety
    ///
    /// Must be called exactly once, after the DCAS is decided.
    pub unsafe fn retire_announced(desc_word: Word) {
        let p = word::desc_addr(desc_word) as *mut u8;
        // Safety: the descriptor is alive (forwarded contract), so its
        // birth field is readable.
        let birth = unsafe { (*(p as *const DcasDesc)).birth };
        // Safety: forwarded contract.
        unsafe {
            lfc_hazard::retire_with(
                p,
                reclaim_desc,
                lfc_hazard::RetireInfo {
                    bytes: std::mem::size_of::<DcasDesc>(),
                    birth,
                    divert: Some(reclaim_desc),
                },
            )
        };
    }

    /// Current `res` state, decoded loosely for assertions.
    ///
    /// # Safety
    ///
    /// Descriptor must still be alive.
    pub unsafe fn res_state(desc_word: Word) -> usize {
        let desc = unsafe { &*(word::desc_addr(desc_word) as *const DcasDesc) };
        // Acquire (audited): test assertions only need the latest decision
        // via `res`'s own modification order.
        desc.res.load(Ordering::Acquire)
    }
}
