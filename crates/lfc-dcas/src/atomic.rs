//! `DAtomic`: a DCAS-capable atomic word, and the paper's `read` operation
//! (Algorithm 4, lines D32–D39).
//!
//! Any memory word that can become the target of a composed linearization
//! point must be declared as a [`DAtomic`] and *every* read of it must go
//! through [`DAtomic::read`] (move-ready definition, requirement 3): a
//! reader that finds a descriptor must help the in-flight operation finish
//! before it can observe a raw value.

use crate::dcas;
use crate::sync::{AtomicUsize, Ordering};
use crate::word::{self, Word};
use lfc_hazard::{slot, Guard};

/// A machine word that may transiently hold an operation descriptor.
///
/// # Safety contract (internal)
///
/// The allocation containing a `DAtomic` must stay live while any thread can
/// reach it: structure headers and nodes are reclaimed exclusively through
/// `lfc-hazard`, and callers of [`DAtomic::read`] must already protect the
/// containing allocation (own it, borrow the structure, or hold a hazard on
/// the node) — the same discipline the paper's objects follow.
#[derive(Debug)]
pub struct DAtomic(AtomicUsize);

impl DAtomic {
    /// New word holding the raw value `raw`.
    pub const fn new(raw: Word) -> Self {
        DAtomic(AtomicUsize::new(raw))
    }

    /// Plain load. May expose an in-flight descriptor; use [`DAtomic::read`]
    /// unless you are the protocol itself.
    ///
    /// SeqCst (audited, required): `load_word` is the *validation-grade*
    /// load. It is used (a) after a hazard-slot publication, where it forms
    /// the load half of the Michael store→load Dekker pair (an Acquire load
    /// could be satisfied before the slot store became visible to a
    /// scanner), and (b) by read-only operations whose results feed the
    /// linearizability checker, where a stale-but-coherent Acquire read
    /// would break real-time ordering. CAS-based paths do not pay for this:
    /// RMWs always observe the latest value in modification order.
    #[inline]
    pub fn load_word(&self) -> Word {
        self.0.load(Ordering::SeqCst)
    }

    /// Single-word CAS, returning success.
    ///
    /// AcqRel/Acquire (relaxed from SeqCst): a linearization-point CAS must
    /// publish the writes that prepared `new` (Release) and observe the
    /// state published by the CAS that installed `old` (Acquire). No
    /// protocol decision hinges on a *total* order of CASes to different
    /// words: cross-word agreement in the DCAS/CASN protocols always goes
    /// through an RMW on a single decision word (`res`/`status`), and RMWs
    /// read the latest value in modification order regardless of ordering.
    #[inline]
    pub fn cas_word(&self, old: Word, new: Word) -> bool {
        self.0
            .compare_exchange(old, new, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Single-word CAS reporting the value seen on failure.
    ///
    /// AcqRel/Acquire: as [`DAtomic::cas_word`]; the failure value is used
    /// to follow descriptor pointers, so the failure load must be Acquire
    /// (it pairs with the Release publication of the descriptor's fields).
    #[inline]
    pub fn cas_val(&self, old: Word, new: Word) -> Result<(), Word> {
        self.0
            .compare_exchange(old, new, Ordering::AcqRel, Ordering::Acquire)
            .map(|_| ())
    }

    /// Store for initialization paths where the word is not yet (or no
    /// longer) shared.
    ///
    /// Release (relaxed from SeqCst): the store only needs to be ordered
    /// after the initialization writes it publishes; the word itself
    /// becomes reachable through some later linearization CAS (Release),
    /// whose observers acquire it transitively.
    #[inline]
    pub fn store_word(&self, w: Word) {
        self.0.store(w, Ordering::Release);
    }

    /// The paper's `read` operation: returns a raw value, helping any
    /// descriptor found in the word to completion first.
    ///
    /// The descriptor is protected with the thread's [`slot::DESC`] hazard
    /// and validated by re-reading the word (lines D34–D37) before helping,
    /// which makes it safe to help operations whose initiator has already
    /// returned and retired the descriptor: in that case the validation
    /// fails, because stale descriptor words are always removed before the
    /// protecting hazard of their installer is released (see `dcas`).
    #[inline]
    pub fn read(&self, g: &Guard) -> Word {
        // SeqCst via `load_word` (audited): read-only results participate
        // in real-time linearizability — see `load_word`.
        let w = self.load_word();
        if word::is_raw(w) {
            return w;
        }
        self.read_slow(g)
    }

    /// Traversal-grade `read`: the per-hop load of an epoch-protected walk
    /// (`lfc-hazard::pin_op`). Like [`DAtomic::read`] it never returns a
    /// descriptor — any in-flight operation found in the word is helped to
    /// completion through the same hazard-disciplined slow path — but the
    /// fast-path load is **Acquire**, not SeqCst.
    ///
    /// Acquire (audited): a hop pointer was published by the Release
    /// linearization CAS that linked the node, and Acquire is exactly what
    /// pairs with it; there is no hazard-publication Dekker to validate
    /// (the epoch entered at `pin_op` protects the whole walk with its one
    /// fence), and the *operation's* real-time ordering is anchored by that
    /// same SC enter fence, not by per-hop loads. A raw value read here
    /// *may* feed a linearization-point `old` (keyed insert/remove do): the
    /// linearization CAS re-validates it — a stale `old` fails the CAS and
    /// the operation retries — so the CAS itself, an RMW in the word's
    /// single modification order, is that path's real-time anchor. What
    /// must stay on [`DAtomic::read`] are *unvalidated* reads: raw values
    /// returned to callers as read-only results (or fed to the
    /// linearizability checker directly), whose only real-time anchor is
    /// the SC load itself.
    #[inline]
    pub fn read_acquire(&self, g: &Guard) -> Word {
        let w = self.0.load(Ordering::Acquire);
        if word::is_raw(w) {
            return w;
        }
        self.read_slow(g)
    }

    #[cold]
    fn read_slow(&self, g: &Guard) -> Word {
        loop {
            let w = self.load_word();
            match word::kind(w) {
                word::KIND_RAW => return w,
                word::KIND_DCAS => {
                    g.set(slot::DESC, word::desc_addr(w));
                    // SeqCst validation load (audited): the load half of
                    // the hazard Dekker pair with `g.set` above.
                    if self.load_word() == w {
                        // Safety: the descriptor is hazard-protected and was
                        // re-validated to still be installed.
                        unsafe { dcas::help(w, g) };
                    }
                    g.clear(slot::DESC);
                }
                _ => {
                    // CASN / RDCSS descriptors (n-object move extension).
                    g.set(slot::DESC, word::desc_addr(w));
                    // SeqCst validation load (audited): as above.
                    if self.load_word() == w {
                        // Safety: as above.
                        unsafe { crate::kcas::help_word(w, self, g) };
                    }
                    g.clear(slot::DESC);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfc_hazard::pin;

    #[test]
    fn read_of_raw_value_is_plain() {
        let g = pin();
        let a = DAtomic::new(0x1000);
        assert_eq!(a.read(&g), 0x1000);
        assert_eq!(a.load_word(), 0x1000);
    }

    #[test]
    fn cas_success_and_failure() {
        let a = DAtomic::new(8);
        assert!(a.cas_word(8, 16));
        assert!(!a.cas_word(8, 24));
        assert_eq!(a.load_word(), 16);
    }

    #[test]
    fn store_overwrites() {
        let a = DAtomic::new(0);
        a.store_word(64);
        assert_eq!(a.load_word(), 64);
    }
}
