//! `DAtomic`: a DCAS-capable atomic word, and the paper's `read` operation
//! (Algorithm 4, lines D32–D39).
//!
//! Any memory word that can become the target of a composed linearization
//! point must be declared as a [`DAtomic`] and *every* read of it must go
//! through [`DAtomic::read`] (move-ready definition, requirement 3): a
//! reader that finds a descriptor must help the in-flight operation finish
//! before it can observe a raw value.

use crate::dcas;
use crate::word::{self, Word};
use lfc_hazard::{slot, Guard};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A machine word that may transiently hold an operation descriptor.
///
/// # Safety contract (internal)
///
/// The allocation containing a `DAtomic` must stay live while any thread can
/// reach it: structure headers and nodes are reclaimed exclusively through
/// `lfc-hazard`, and callers of [`DAtomic::read`] must already protect the
/// containing allocation (own it, borrow the structure, or hold a hazard on
/// the node) — the same discipline the paper's objects follow.
#[derive(Debug)]
pub struct DAtomic(AtomicUsize);

impl DAtomic {
    /// New word holding the raw value `raw`.
    pub const fn new(raw: Word) -> Self {
        DAtomic(AtomicUsize::new(raw))
    }

    /// Plain load. May expose an in-flight descriptor; use [`DAtomic::read`]
    /// unless you are the protocol itself.
    #[inline]
    pub fn load_word(&self) -> Word {
        self.0.load(Ordering::SeqCst)
    }

    /// Single-word CAS, returning success.
    #[inline]
    pub fn cas_word(&self, old: Word, new: Word) -> bool {
        self.0
            .compare_exchange(old, new, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Single-word CAS reporting the value seen on failure.
    #[inline]
    pub fn cas_val(&self, old: Word, new: Word) -> Result<(), Word> {
        self.0
            .compare_exchange(old, new, Ordering::SeqCst, Ordering::SeqCst)
            .map(|_| ())
    }

    /// Unsynchronized-looking store for initialization paths where the word
    /// is not yet (or no longer) shared.
    #[inline]
    pub fn store_word(&self, w: Word) {
        self.0.store(w, Ordering::SeqCst);
    }

    /// The paper's `read` operation: returns a raw value, helping any
    /// descriptor found in the word to completion first.
    ///
    /// The descriptor is protected with the thread's [`slot::DESC`] hazard
    /// and validated by re-reading the word (lines D34–D37) before helping,
    /// which makes it safe to help operations whose initiator has already
    /// returned and retired the descriptor: in that case the validation
    /// fails, because stale descriptor words are always removed before the
    /// protecting hazard of their installer is released (see `dcas`).
    #[inline]
    pub fn read(&self, g: &Guard) -> Word {
        let w = self.0.load(Ordering::SeqCst);
        if word::is_raw(w) {
            return w;
        }
        self.read_slow(g)
    }

    #[cold]
    fn read_slow(&self, g: &Guard) -> Word {
        loop {
            let w = self.0.load(Ordering::SeqCst);
            match word::kind(w) {
                word::KIND_RAW => return w,
                word::KIND_DCAS => {
                    g.set(slot::DESC, word::desc_addr(w));
                    if self.0.load(Ordering::SeqCst) == w {
                        // Safety: the descriptor is hazard-protected and was
                        // re-validated to still be installed.
                        unsafe { dcas::help(w, g) };
                    }
                    g.clear(slot::DESC);
                }
                _ => {
                    // CASN / RDCSS descriptors (n-object move extension).
                    g.set(slot::DESC, word::desc_addr(w));
                    if self.0.load(Ordering::SeqCst) == w {
                        // Safety: as above.
                        unsafe { crate::kcas::help_word(w, self, g) };
                    }
                    g.clear(slot::DESC);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfc_hazard::pin;

    #[test]
    fn read_of_raw_value_is_plain() {
        let g = pin();
        let a = DAtomic::new(0x1000);
        assert_eq!(a.read(&g), 0x1000);
        assert_eq!(a.load_word(), 0x1000);
    }

    #[test]
    fn cas_success_and_failure() {
        let a = DAtomic::new(8);
        assert!(a.cas_word(8, 16));
        assert!(!a.cas_word(8, 24));
        assert_eq!(a.load_word(), 16);
    }

    #[test]
    fn store_overwrites() {
        let a = DAtomic::new(0);
        a.store_word(64);
        assert_eq!(a.load_word(), 64);
    }
}
