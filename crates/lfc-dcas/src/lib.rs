//! Software double-word compare-and-swap (DCAS) with helping, after
//! Cederman & Tsigas §3.2.2 (Algorithm 4), plus the CASN generalization the
//! paper's conclusion proposes for n-object moves.
//!
//! The composition layer (`lfc-core`) captures the linearization-point CAS
//! triples of the composed operations as [`CasnEntry`] values and commits
//! them together through the unified [`engine::commit_entries`] — DCAS is
//! its K=2 specialization, CASN the general case, and both share the
//! per-thread descriptor pools and the solo-regime fast path. Data
//! structures route every read of a composable word through
//! [`DAtomic::read`] so that readers help in-flight operations finish
//! (lock-freedom).

#![warn(missing_docs)]

pub mod adopt;
pub mod atomic;
pub mod dcas;
pub mod engine;
pub mod kcas;
pub(crate) mod pool;
#[doc(hidden)]
pub mod sync;
pub mod word;

pub use adopt::{adopt_dead_threads, helped_completions};
pub use atomic::DAtomic;
pub use dcas::{counters, DcasDesc, DcasResult, DescHandle};
pub use engine::{commit_entries, try_commit_entries};
pub use kcas::{CasnEntry, CasnResult, MAX_ENTRIES};
pub use word::Word;
