//! Software double-word compare-and-swap (DCAS) with helping, after
//! Cederman & Tsigas §3.2.2 (Algorithm 4), plus the CASN generalization the
//! paper's conclusion proposes for n-object moves.
//!
//! The composition layer (`lfc-core`) captures the two linearization-point
//! CAS triples of a remove and an insert operation in a [`DcasDesc`] and
//! commits them together through [`DescHandle::commit`]; data structures
//! route every read of a composable word through [`DAtomic::read`] so that
//! readers help in-flight operations finish (lock-freedom).

#![warn(missing_docs)]

pub mod atomic;
pub mod dcas;
pub mod kcas;
pub mod word;

pub use atomic::DAtomic;
pub use dcas::{counters, DcasDesc, DcasResult, DescHandle};
pub use word::Word;
