//! Dead-thread adoption: completing and reclaiming operations whose owner
//! died mid-flight.
//!
//! The paper's lock-freedom argument says an abandoned composed operation
//! is completed by *helpers* — any thread whose `read` finds the
//! descriptor. That covers words other threads touch. Two gaps remain when
//! a thread genuinely dies (`lfc_runtime::fault::abandon`):
//!
//! 1. **Quiet words**: a descriptor installed at a word nobody else reads
//!    stays torn forever. The **announce table** closes this: every
//!    initiator publishes its descriptor word here (indexed by tid) for
//!    the duration of its commit, so an adopter can find and help it
//!    without ever touching the structure.
//! 2. **Resources**: the dead thread's id, hazard-slot bank and epoch slot
//!    stay claimed (deliberately — the bank is what keeps the corpse's
//!    in-flight protections alive for helpers, and the held id keeps
//!    survivors out of the solo regime while the corpse's descriptor may
//!    be installed). [`adopt_dead_threads`] helps the announced operation
//!    to completion, then releases the id and bank through the tid
//!    finalizers.
//!
//! The leak bound (DESIGN.md "Fault model"): one descriptor (≤ 512 B,
//! leaked because helpers may still hold it — see `DescHandle`'s drop) per
//! abandonment, plus whatever nodes the abandoned operation owned but had
//! not published. Everything else — pooled descriptors, allocator
//! magazines, pending retire lists — is flushed by the exit hooks that run
//! during abandonment, and the id/bank are reclaimed here.

use crate::word::{self, Word};
use lfc_hazard::Guard;
use lfc_runtime::{fault, CachePadded, MAX_THREADS};
// Deliberately `std` atomics, NOT the `crate::sync` model facade: the
// announce table is control-plane metadata written around *every* non-solo
// commit, and instrumenting those two stores would add two scheduling
// points per commit to the model's state space without adding explorable
// behaviour — an adopter synchronizes with the corpse through the fault
// registry's flag (also `std`, `lfc_runtime::fault`), and under the
// model's cooperative scheduler real stores are sequentially consistent.
use std::sync::atomic::{AtomicUsize, Ordering};

/// One announce slot per tid: 0, or the initiator's in-flight descriptor
/// word (`dcas_plain` / `casn_word`). Padded: a slot is written twice per
/// announced commit by its owner; adopters scan rarely.
static ANNOUNCE: [CachePadded<AtomicUsize>; MAX_THREADS] =
    [const { CachePadded::new(AtomicUsize::new(0)) }; MAX_THREADS];

/// Publish `tid`'s in-flight descriptor word for adopters.
///
/// Release (audited): an adopter reads this slot only after winning
/// `fault::claim_corpse` — an Acquire CAS of the corpse flag that the
/// dying thread Release-stores *after* this store in program order (every
/// kill site sits between announce and clear). That synchronizes-with edge
/// already makes the announced word (and the descriptor fields written
/// before it) visible to the adopter, so this store needs no ordering of
/// its own; SeqCst here would put a full fence on every non-solo commit
/// (measured: +47% on the contended 2-thread move bench). Release is kept
/// over Relaxed as belt-and-braces for the tests-only [`announced`]
/// diagnostic, which bypasses the corpse handshake.
pub(crate) fn announce(tid: u16, desc_word: Word) {
    ANNOUNCE[tid as usize].store(desc_word, Ordering::Release);
}

/// Clear `tid`'s announce slot after its commit call returned. Release:
/// nothing is published; the slot only transitions to "nothing in
/// flight".
pub(crate) fn clear_announce(tid: u16) {
    ANNOUNCE[tid as usize].store(0, Ordering::Release);
}

/// Announced descriptor word for `tid`, if any (diagnostics/tests).
pub fn announced(tid: u16) -> Word {
    ANNOUNCE[tid as usize].load(Ordering::SeqCst)
}

/// Adopt every corpse (thread that died mid-operation, see
/// `lfc_runtime::fault`): help its announced operation to completion,
/// then release its thread id, hazard bank and epoch slot. Exactly one
/// adopter wins each corpse; losers skip it entirely. Returns the number
/// of corpses this call released.
///
/// The claim comes **first** — before the announce read and the help.
/// Claim-after-help has an ABA hole: between this adopter's announce
/// snapshot and its claim CAS, a rival can claim + release the corpse,
/// the freed tid can be re-minted by a new thread that announces a new
/// operation and dies again, and the stale adopter's claim then succeeds
/// against the *new* incarnation — clearing an announce slot (and, via
/// release, a hazard bank) that still protects an undecided operation.
/// Claiming first closes the window: the tid cannot be released (and so
/// cannot be re-minted) while this adopter holds the claim, so the
/// announce word it reads is the claimed incarnation's. An adopter that
/// cannot finish the help (allocation failure) re-parks the corpse for a
/// later pass instead of releasing it.
///
/// Callers need any pinned guard; the helping path adopts the corpse's
/// hazards exactly like an ordinary `read`-helper (Lemma 6 holds because
/// the corpse's bank is intact until the release step below).
pub fn adopt_dead_threads(g: &Guard) -> usize {
    let mut released = 0;
    for tid in fault::corpses() {
        if !fault::claim_corpse(tid) {
            // A rival adopter owns this corpse (or already released it).
            continue;
        }
        let w = ANNOUNCE[tid as usize].load(Ordering::SeqCst);
        #[cfg(lfc_model)]
        let skip_help = model_toggles::SKIP_ADOPT_HELP.load(std::sync::atomic::Ordering::Relaxed);
        #[cfg(not(lfc_model))]
        let skip_help = false;
        let decided = if w == 0 || skip_help {
            // Nothing announced (the corpse died outside a commit), or the
            // model sabotage toggle pretends the help ran.
            true
        } else {
            // Safety: the descriptor behind an announced word is leaked by
            // the abandoning drop path — it can never be freed or recycled
            // — and the corpse's hazard bank still protects the operation's
            // target allocations (Lemma 6's initiator obligation).
            unsafe { help_announced(w, g) }
        };
        if !decided {
            // This adopter ran out of memory mid-help; re-park the corpse
            // for a later (or better-resourced) adoption pass.
            fault::repark_corpse(tid);
            continue;
        }
        // The operation is decided (helped above, or completed earlier by
        // organic read-helping); releasing the bank is now safe.
        ANNOUNCE[tid as usize].store(0, Ordering::Release);
        fault::release_corpse(tid);
        counters_adopt::ADOPTIONS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        released += 1;
    }
    released
}

/// Help an announced descriptor word to completion, by kind. Returns true
/// iff the operation is decided on return (false only when the adopter
/// itself failed an RDCSS allocation mid-help).
///
/// # Safety
///
/// `w` must be a descriptor word whose descriptor is alive for the whole
/// call (adoption relies on abandoned descriptors being leaked) and whose
/// initiator's hazard bank is still intact.
unsafe fn help_announced(w: Word, g: &Guard) -> bool {
    match word::kind(w) {
        word::KIND_DCAS => {
            // Only help a *published* DCAS. The first-word install is
            // initiator-only, so helping a descriptor the dead initiator
            // announced but never installed would run the helper half of
            // the protocol against a word that never held the announcement
            // and could apply only the second CAS — a torn half-commit
            // (`dcas::dcas_is_published`). Unpublished + dead owner means
            // the operation never took effect and never will: decided.
            // Safety: forwarded (announced descriptors are leaked alive).
            if unsafe { crate::dcas::dcas_is_published(w) } {
                // Safety: forwarded; run as helper (the initiator is dead).
                let _ = unsafe { crate::dcas::dcas_run(w, false, g) };
            }
            true
        }
        word::KIND_CASN => {
            let d = word::desc_addr(w) as *const crate::kcas::CasnDesc;
            // Safety: forwarded.
            unsafe { crate::kcas::casn_execute(&*d, w, g, false) }.is_ok()
        }
        _ => true,
    }
}

pub(crate) mod counters_adopt {
    use std::sync::atomic::AtomicUsize;
    pub(crate) static ADOPTIONS: AtomicUsize = AtomicUsize::new(0);
}

/// Total operations completed on behalf of another thread: helper runs of
/// the DCAS/CASN protocol plus corpse adoptions. Surfaced in the
/// `reproduce` JSON `reclamation` block.
pub fn helped_completions() -> usize {
    crate::dcas::counters::help_runs() + fault::adopted_total()
}

/// Deterministic sabotage switches for the model checker: each one breaks
/// the adoption protocol in a way a scenario must *catch*.
#[cfg(lfc_model)]
pub mod model_toggles {
    use std::sync::atomic::AtomicBool;

    /// Skip the helping step of [`super::adopt_dead_threads`]: corpses are
    /// released without completing their announced operation, leaving the
    /// descriptor installed forever. The kill scenario asserts the target
    /// words are raw after adoption — with this toggle set, that assertion
    /// must fail (the broken-helping bug is *caught*).
    pub static SKIP_ADOPT_HELP: AtomicBool = AtomicBool::new(false);
}
