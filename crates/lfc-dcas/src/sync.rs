//! Crate-local virtual-atomics facade: re-exports
//! [`lfc_runtime::sync`], the single switch between `std::sync::atomic`
//! (normal builds) and the `lfc-model` instrumented shadow memory
//! (`--cfg lfc_model`). Every protocol atomic in this crate — the
//! [`crate::DAtomic`] word, descriptor `res`/`status` words — must import
//! from here, never from `std` directly. (The diagnostic counters in
//! `counters` modules deliberately stay on `std`: no protocol decision
//! reads them, and instrumenting them would only multiply scheduling
//! points.)

pub use lfc_runtime::sync::*;
