//! The unified k-entry commit: one entry point for every composed
//! operation, with DCAS as the K=2 specialization of CASN.
//!
//! The composition engine in `lfc-core` captures up to
//! [`MAX_ENTRIES`](crate::kcas::MAX_ENTRIES) linearization-point CAS
//! triples (as [`CasnEntry`] values) and commits them all through
//! [`commit_entries`]. Three regimes, fastest first:
//!
//! 1. **Solo** ([`lfc_runtime::solo`]): the calling thread is the only
//!    registered thread and the registration handshake keeps it that way,
//!    so no descriptor is built at all — the k CASes run back to back
//!    ([`crate::kcas::solo_commit`], shared with `DescHandle`'s own fast
//!    path), rolling back the prefix on the first mismatch.
//! 2. **K = 2**: the paper's own DCAS (Algorithm 4) via a pooled
//!    [`DescHandle`] — fewer CASes than the general protocol and no RDCSS
//!    descriptors, which is exactly why the paper prefers it for pairs.
//! 3. **K > 2**: the Harris–Fraser–Pratt CASN via a pooled
//!    [`CasnHandle`](crate::kcas::CasnHandle).
//!
//! All three share the per-thread descriptor pools (`crate::pool`), so the
//! steady-state hot path performs **zero** `lfc-alloc` block allocations.

use crate::dcas::{DcasResult, DescHandle};
use crate::kcas::{solo_commit, CasnEntry, CasnHandle, CasnResult, MAX_ENTRIES};
use lfc_hazard::Guard;
use lfc_runtime::solo;

/// Atomically commit `entries` (between 2 and [`MAX_ENTRIES`] CAS triples):
/// either every word is swung from its `old` to its `new`, or — reported as
/// [`CasnResult::FailedAt`] with the first failing index — no word is left
/// changed.
///
/// # Safety
///
/// Every entry's `ptr` must point to a live `DAtomic` whose allocation the
/// caller keeps alive for the duration of the call (by borrow or hazard;
/// `hp` is what helpers adopt), and the entry words must be pairwise
/// distinct — a k-word CAS cannot express two CASes on one word. The
/// `Composition` builder in `lfc-core` is the safe wrapper: it captures
/// entries from live borrows and rejects aliased words at capture time
/// (debug builds re-check distinctness here).
#[inline]
pub unsafe fn commit_entries(entries: &[CasnEntry], g: &Guard) -> CasnResult {
    assert!(
        (2..=MAX_ENTRIES).contains(&entries.len()),
        "commit_entries supports 2..={MAX_ENTRIES} entries"
    );
    debug_assert!(
        entries
            .iter()
            .enumerate()
            .all(|(i, e)| entries[..i].iter().all(|p| !std::ptr::eq(p.ptr, e.ptr))),
        "entry words must be pairwise distinct (engine alias detection)"
    );

    // Regime 1: solo — no descriptor, no publication, no reclamation work.
    if let Some(_solo) = solo::try_enter() {
        return solo_commit(entries);
    }

    // Regime 2: K=2 — the paper's DCAS is the two-entry specialization.
    if let [first, second] = entries {
        let mut h = DescHandle::new();
        h.set_first_from(first);
        h.set_second_from(second);
        return match h.commit_engine(g) {
            DcasResult::Success => CasnResult::Success,
            DcasResult::FirstFailed => CasnResult::FailedAt(0),
            DcasResult::SecondFailed => CasnResult::FailedAt(1),
        };
    }

    // Regime 3: the general CASN.
    let mut h = CasnHandle::new();
    for (i, e) in entries.iter().enumerate() {
        h.set_entry_from(i, e);
    }
    h.commit(g)
}

/// Fallible [`commit_entries`]: descriptor and RDCSS allocation failures
/// (genuine exhaustion, or injection at the `"dcas.desc"`, `"dcas.casn"`
/// and `"dcas.rdcss"` sites) surface as `Err` instead of panicking, with
/// no word left changed. The solo regime allocates nothing and cannot
/// fail.
///
/// # Safety
///
/// As [`commit_entries`].
#[inline]
pub unsafe fn try_commit_entries(
    entries: &[CasnEntry],
    g: &Guard,
) -> Result<CasnResult, lfc_alloc::AllocError> {
    assert!(
        (2..=MAX_ENTRIES).contains(&entries.len()),
        "commit_entries supports 2..={MAX_ENTRIES} entries"
    );
    debug_assert!(
        entries
            .iter()
            .enumerate()
            .all(|(i, e)| entries[..i].iter().all(|p| !std::ptr::eq(p.ptr, e.ptr))),
        "entry words must be pairwise distinct (engine alias detection)"
    );

    if let Some(_solo) = solo::try_enter() {
        return Ok(solo_commit(entries));
    }

    if let [first, second] = entries {
        let mut h = DescHandle::try_new()?;
        h.set_first_from(first);
        h.set_second_from(second);
        return Ok(match h.commit_engine(g) {
            DcasResult::Success => CasnResult::Success,
            DcasResult::FirstFailed => CasnResult::FailedAt(0),
            DcasResult::SecondFailed => CasnResult::FailedAt(1),
        });
    }

    let mut h = CasnHandle::try_new()?;
    for (i, e) in entries.iter().enumerate() {
        h.set_entry_from(i, e);
    }
    h.try_commit(g)
}
