//! Descriptor-pool lifecycle and reuse-safety tests.
//!
//! The pooling invariant under test: a descriptor re-enters circulation
//! only after the hazard domain proves no helper can still reach it, so a
//! helper can never operate on a descriptor that has been handed out for a
//! *new* DCAS (which would corrupt unrelated words).

use lfc_dcas::dcas::test_support;
use lfc_dcas::{counters, DAtomic, DcasResult, DescHandle};
use lfc_hazard::pin;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn dropped_handles_are_pooled_and_reused() {
    let _g = pin();
    let hits0 = counters::desc_pool_hits();
    // Warm the pool.
    drop(DescHandle::new());
    // Subsequent allocations on this thread must hit the pool. (The
    // counters are process-global and other tests in this binary run
    // concurrently, so only lower bounds on our own contribution can be
    // asserted — a miss upper bound would race sibling tests' threads.)
    for _ in 0..64 {
        drop(DescHandle::new());
    }
    assert!(
        counters::desc_pool_hits() >= hits0 + 64,
        "drop/alloc cycles must be pool hits (hits {} -> {})",
        hits0,
        counters::desc_pool_hits()
    );
}

#[test]
fn published_descriptor_is_not_reused_while_helper_holds_it() {
    // Publish a descriptor, let a helper protect + complete it, and only
    // then retire it. While the helper's DESC hazard is live, allocating a
    // burst of new descriptors must never return the protected address.
    let g = pin();
    let a = Box::leak(Box::new(DAtomic::new(8)));
    let b = Box::leak(Box::new(DAtomic::new(16)));
    let mut h = DescHandle::new();
    h.set_first(a, 8, 24, 0);
    h.set_second(b, 16, 32, 0);
    let w = test_support::announce_only(h).expect("announce succeeds");
    let protected = lfc_dcas::word::desc_addr(w);

    // Simulate a stalled helper: protect the descriptor in our DESC slot.
    g.set(lfc_hazard::slot::DESC, protected);
    // Finish the operation as a helper would, then retire the descriptor —
    // it is now on the hazard domain's pending list, still protected.
    let r = unsafe { test_support::resume(w, &g) };
    assert_eq!(r, DcasResult::Success);
    unsafe { test_support::retire_announced(w) };
    lfc_hazard::flush();

    // A burst of allocations (draining the thread pool and forcing fresh
    // blocks) must never produce the protected address.
    let burst: Vec<DescHandle> = (0..256).map(|_| DescHandle::new()).collect();
    for d in &burst {
        assert!(
            !format!("{d:?}").contains(&format!("{protected:#x}")),
            "protected descriptor must not re-enter circulation"
        );
    }
    drop(burst);

    // Release the hazard: now reclamation may recycle it.
    g.clear(lfc_hazard::slot::DESC);
    lfc_hazard::flush();
}

#[test]
fn pool_reuse_is_safe_under_helping_stress() {
    // Movers + readers on a shared pair: every commit cycles descriptors
    // through publish → retire → reclaim → pool → reuse while readers
    // concurrently help through stale words. The lockstep invariant fails
    // if any helper ever writes through a reused descriptor's stale
    // triples.
    const THREADS: usize = 4;
    const SUCCESSES: usize = 4_000;
    let a = Arc::new(DAtomic::new(0));
    let b = Arc::new(DAtomic::new(8));
    let total = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let a = a.clone();
            let b = b.clone();
            let total = total.clone();
            s.spawn(move || {
                let g = pin();
                let mut done = 0;
                while done < SUCCESSES {
                    let w1 = a.read(&g);
                    let mut h = DescHandle::new();
                    h.set_first(&a, w1, w1 + 8, 0);
                    h.set_second(&b, w1 + 8, w1 + 16, 0);
                    if let (DcasResult::Success, _) = h.commit(&g) {
                        done += 1;
                        total.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        // A pure reader thread that keeps helping in-flight operations.
        {
            let a = a.clone();
            let b = b.clone();
            let total = total.clone();
            s.spawn(move || {
                let g = pin();
                while total.load(Ordering::Relaxed) < THREADS * SUCCESSES {
                    let x = a.read(&g);
                    let y = b.read(&g);
                    assert_eq!(x % 8, 0);
                    assert_eq!(y % 8, 0);
                }
            });
        }
    });

    let g = pin();
    let n = total.load(Ordering::Relaxed);
    assert_eq!(n, THREADS * SUCCESSES);
    assert_eq!(a.read(&g), 8 * n, "no lost or doubled first-word swing");
    assert_eq!(
        b.read(&g),
        8 * n + 8,
        "no lost or doubled second-word swing"
    );
    assert!(
        counters::desc_pool_hits() > 0,
        "stress must actually exercise pooled reuse"
    );
}
