//! Deterministic abandoned-owner test (PR 8, satellite 3): the initiator
//! parks forever *after* the announcement (line D10) and a helper alone
//! drives the DCAS to its decision.
//!
//! This is the paper's core robustness claim (Lemma 5/6 territory) pinned
//! down without any scheduler luck: `test_support::announce_only` performs
//! exactly the announcing CAS and then stops, so the descriptor is
//! published and *nobody* is running the protocol until the helper's
//! `read` stumbles over it. The assertions check the helper's work through
//! `counters::help_runs()` — the owner never calls `dcas_run`, so any
//! decision must have come from the help path.

use lfc_dcas::dcas::{counters, test_support};
use lfc_dcas::{DAtomic, DcasResult, DescHandle};
use lfc_hazard::pin;

#[test]
fn helper_alone_commits_a_parked_owners_dcas() {
    let a = DAtomic::new(8);
    let b = DAtomic::new(16);
    let g = pin();
    let mut h = DescHandle::new();
    h.set_first(&a, 8, 24, 0);
    h.set_second(&b, 16, 32, 0);
    let w = test_support::announce_only(h).expect("word 1 matches, announce lands");
    // Owner parks here: no dcas_run, no finish, no retire.

    let before = counters::help_runs();
    std::thread::scope(|sc| {
        sc.spawn(|| {
            // A plain read of word 1 finds the descriptor and must help it
            // to completion before returning a raw value.
            let g = pin();
            assert_eq!(a.read(&g), 24, "helper's read returns the post-DCAS value");
        });
    });
    assert!(
        counters::help_runs() > before,
        "the decision can only have come from the help path"
    );

    // Both words swung without the owner ever running the protocol.
    assert_eq!(a.read(&g), 24);
    assert_eq!(b.read(&g), 32);

    // The owner "wakes up": resuming is idempotent on a decided DCAS.
    assert_eq!(unsafe { test_support::resume(w, &g) }, DcasResult::Success);
    // Safety: decided; retired exactly once (announce_only handed us the
    // initiator's retire obligation).
    unsafe { test_support::retire_announced(w) };
}

#[test]
fn helper_alone_reverts_a_parked_owners_failed_dcas() {
    // Word 2 will not match: the helper must decide SECONDFAILED and roll
    // the announcement back out of word 1 (paper Lemma 4), leaving both
    // words at their old raw values.
    let a = DAtomic::new(8);
    let b = DAtomic::new(16);
    let g = pin();
    let mut h = DescHandle::new();
    h.set_first(&a, 8, 24, 0);
    h.set_second(&b, 96, 32, 0);
    let w = test_support::announce_only(h).expect("word 1 matches, announce lands");

    let before = counters::help_runs();
    std::thread::scope(|sc| {
        sc.spawn(|| {
            let g = pin();
            assert_eq!(a.read(&g), 8, "helper's read returns the reverted value");
        });
    });
    assert!(counters::help_runs() > before);
    assert_eq!(a.read(&g), 8);
    assert_eq!(b.read(&g), 16);

    assert_eq!(
        unsafe { test_support::resume(w, &g) },
        DcasResult::SecondFailed
    );
    // Safety: decided; single retire.
    unsafe { test_support::retire_announced(w) };
}
