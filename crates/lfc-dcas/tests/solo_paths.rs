//! Deterministic coverage of the solo (single-thread) DCAS fast path.
//!
//! This file intentionally holds **one** test function: integration tests
//! in one binary run on a thread pool, and a sibling test's `pin()` would
//! register a second thread and disable the solo regime. With a single
//! test, the solo branch of `DescHandle::commit` is guaranteed taken for
//! the first phase, and the spawned-thread phase guarantees the fallback
//! branch — both outcomes asserted against the protocol's contract.

use lfc_dcas::{DAtomic, DcasResult, DescHandle};
use lfc_hazard::pin;

#[test]
fn solo_fast_path_matches_protocol_semantics() {
    let g = pin();
    assert_eq!(
        lfc_runtime::active_threads(),
        1,
        "this binary must contain exactly this one test"
    );

    // Success: both words swing.
    let a = DAtomic::new(8);
    let b = DAtomic::new(16);
    let mut h = DescHandle::new();
    h.set_first(&a, 8, 24, 0);
    h.set_second(&b, 16, 32, 0);
    let (r, next) = h.commit(&g);
    assert_eq!(r, DcasResult::Success);
    assert!(next.is_none());
    assert_eq!(a.read(&g), 24);
    assert_eq!(b.read(&g), 32);

    // FirstFailed: nothing changes, handle comes back for reuse.
    let mut h = DescHandle::new();
    h.set_first(&a, 96, 40, 0);
    h.set_second(&b, 32, 40, 0);
    let (r, next) = h.commit(&g);
    assert_eq!(r, DcasResult::FirstFailed);
    assert_eq!(a.read(&g), 24);
    assert_eq!(b.read(&g), 32);

    // SecondFailed: the first word's swing must be reverted (Lemma 4), and
    // the returned handle still carries a usable first triple.
    let mut h = next.expect("handle after FirstFailed");
    h.set_first(&a, 24, 40, 0);
    h.set_second(&b, 96, 40, 0);
    let (r, next) = h.commit(&g);
    assert_eq!(r, DcasResult::SecondFailed);
    assert_eq!(a.read(&g), 24, "first word reverted");
    assert_eq!(b.read(&g), 32);
    let mut h = next.expect("handle after SecondFailed");
    h.set_second(&b, 32, 40, 0);
    let (r, _) = h.commit(&g);
    assert_eq!(r, DcasResult::Success);
    assert_eq!(a.read(&g), 40);
    assert_eq!(b.read(&g), 40);

    // Aliased words take the slow path even solo and fail cleanly.
    let w = DAtomic::new(8);
    let mut h = DescHandle::new();
    h.set_first(&w, 8, 16, 0);
    h.set_second(&w, 8, 24, 0);
    let (r, _) = h.commit(&g);
    assert_eq!(r, DcasResult::SecondFailed);
    assert_eq!(w.read(&g), 8);

    // A successful solo commit never publishes, so it must not add to the
    // hazard domain's retire backlog.
    let before = lfc_hazard::stats().0;
    for i in 0..1_000usize {
        let o = 40 + i * 8;
        let mut h = DescHandle::new();
        h.set_first(&a, o, o + 8, 0);
        h.set_second(&b, o, o + 8, 0);
        let (r, _) = h.commit(&g);
        assert_eq!(r, DcasResult::Success);
    }
    assert_eq!(
        lfc_hazard::stats().0,
        before,
        "solo successes bypass retire entirely"
    );

    // Registration of a second thread ends the solo regime: the same
    // operations still work (now through the descriptor protocol), and the
    // registration barrier means the new thread can never observe a torn
    // pair.
    let a2 = &a;
    let b2 = &b;
    std::thread::scope(|sc| {
        let watcher = sc.spawn(move || {
            let g = pin();
            // Every DCAS advances both words by 8 with b swinging last, so
            // reading b before a must observe a >= b; both reads must be
            // raw multiples of 8 (helping resolved any descriptor), and a
            // is monotone.
            let mut last_a = 0;
            for _ in 0..20_000 {
                let y = b2.read(&g);
                let x = a2.read(&g);
                assert_eq!(x % 8, 0, "raw value");
                assert_eq!(y % 8, 0, "raw value");
                assert!(x >= y, "a read after b cannot lag it: {x} < {y}");
                assert!(x >= last_a, "a is monotone");
                last_a = x;
            }
        });
        let g = pin();
        // ACTIVE is now >= 2 at least until the watcher finishes; commits
        // in this window exercise the published protocol.
        let mut o = a.read(&g);
        for _ in 0..20_000 {
            let mut h = DescHandle::new();
            h.set_first(&a, o, o + 8, 0);
            h.set_second(&b, o, o + 8, 0);
            match h.commit(&g) {
                (DcasResult::Success, _) => o += 8,
                _ => o = a.read(&g),
            }
        }
        watcher.join().unwrap();
    });
    let g = pin();
    assert_eq!(
        a.read(&g),
        b.read(&g),
        "pair in lockstep after mixed regimes"
    );
}
