//! Protocol tests for the software DCAS (paper Algorithm 4).
//!
//! Raw test values are multiples of 8 so they are valid "raw" protocol
//! words (low kind bits clear), mimicking aligned node pointers.

use lfc_dcas::dcas::test_support;
use lfc_dcas::{DAtomic, DcasResult, DescHandle};
use lfc_hazard::pin;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn commit(
    a: &DAtomic,
    old1: usize,
    new1: usize,
    b: &DAtomic,
    old2: usize,
    new2: usize,
) -> DcasResult {
    let g = pin();
    let mut h = DescHandle::new();
    h.set_first(a, old1, new1, 0);
    h.set_second(b, old2, new2, 0);
    let (r, _next) = h.commit(&g);
    r
}

#[test]
fn success_swings_both_words() {
    let a = DAtomic::new(8);
    let b = DAtomic::new(16);
    assert_eq!(commit(&a, 8, 24, &b, 16, 32), DcasResult::Success);
    let g = pin();
    assert_eq!(a.read(&g), 24);
    assert_eq!(b.read(&g), 32);
}

#[test]
fn first_mismatch_changes_nothing() {
    let a = DAtomic::new(8);
    let b = DAtomic::new(16);
    assert_eq!(commit(&a, 96, 24, &b, 16, 32), DcasResult::FirstFailed);
    let g = pin();
    assert_eq!(a.read(&g), 8);
    assert_eq!(b.read(&g), 16);
}

#[test]
fn second_mismatch_reverts_announcement() {
    let a = DAtomic::new(8);
    let b = DAtomic::new(16);
    assert_eq!(commit(&a, 8, 24, &b, 96, 32), DcasResult::SecondFailed);
    let g = pin();
    // The announcement at word 1 must have been rolled back (Lemma 4).
    assert_eq!(a.read(&g), 8);
    assert_eq!(b.read(&g), 16);
}

#[test]
fn null_old_values_work() {
    // Queue enqueue CASes next from null; make sure 0 is a valid old/new.
    let a = DAtomic::new(0);
    let b = DAtomic::new(40);
    assert_eq!(commit(&a, 0, 8, &b, 40, 0), DcasResult::Success);
    let g = pin();
    assert_eq!(a.read(&g), 8);
    assert_eq!(b.read(&g), 0);
}

#[test]
fn failed_handle_is_reusable() {
    let g = pin();
    let a = DAtomic::new(8);
    let b = DAtomic::new(16);
    let mut h = DescHandle::new();
    h.set_first(&a, 96, 24, 0); // will FirstFail
    h.set_second(&b, 16, 32, 0);
    let (r, next) = h.commit(&g);
    assert_eq!(r, DcasResult::FirstFailed);
    let mut h = next.expect("handle comes back after FirstFailed");
    h.set_first(&a, 8, 24, 0);
    let (r, next) = h.commit(&g);
    assert_eq!(r, DcasResult::Success);
    assert!(next.is_none());
    assert_eq!(a.read(&g), 24);
    assert_eq!(b.read(&g), 32);
}

#[test]
fn second_failed_fresh_handle_keeps_first_triple() {
    let g = pin();
    let a = DAtomic::new(8);
    let b = DAtomic::new(16);
    let mut h = DescHandle::new();
    h.set_first(&a, 8, 24, 0);
    h.set_second(&b, 96, 32, 0); // will SecondFail
    let (r, next) = h.commit(&g);
    assert_eq!(r, DcasResult::SecondFailed);
    let mut h = next.expect("fresh handle after SecondFailed");
    // Only refresh the second side, as the move's insert retry does.
    h.set_second(&b, 16, 32, 0);
    let (r, _) = h.commit(&g);
    assert_eq!(r, DcasResult::Success);
    assert_eq!(a.read(&g), 24);
    assert_eq!(b.read(&g), 32);
}

#[test]
fn helper_completes_stalled_operation_via_word1() {
    // Announce (D10) and stall; a reader of word 1 must complete the DCAS.
    let g = pin();
    let a = Box::leak(Box::new(DAtomic::new(8)));
    let b = Box::leak(Box::new(DAtomic::new(16)));
    let mut h = DescHandle::new();
    h.set_first(a, 8, 24, 0);
    h.set_second(b, 16, 32, 0);
    let w = test_support::announce_only(h).expect("announce succeeds");
    // Word 1 now holds the descriptor; a read must help and return 24.
    assert_eq!(a.read(&g), 24);
    assert_eq!(b.read(&g), 32);
    let r = unsafe { test_support::resume(w, &g) };
    assert_eq!(r, DcasResult::Success);
    unsafe { test_support::retire_announced(w) };
}

#[test]
fn helper_completes_stalled_operation_via_word2() {
    // Reading the *second* word while only the announcement happened: the
    // word still holds a raw value, so the reader sees old2 — that is fine
    // (the operation has not linearized yet). But once any reader of word 1
    // helps, word 2 is done too.
    let g = pin();
    let a = Box::leak(Box::new(DAtomic::new(8)));
    let b = Box::leak(Box::new(DAtomic::new(16)));
    let mut h = DescHandle::new();
    h.set_first(a, 8, 24, 0);
    h.set_second(b, 16, 32, 0);
    let w = test_support::announce_only(h).expect("announce succeeds");
    assert_eq!(b.read(&g), 16, "not yet linearized");
    assert_eq!(a.read(&g), 24, "reader helps");
    assert_eq!(b.read(&g), 32, "second word completed by the helper");
    unsafe {
        assert_eq!(test_support::res_state(w), 2, "res is SUCCESS");
        test_support::retire_announced(w);
    }
}

#[test]
fn stalled_announcement_with_changed_second_word_fails_cleanly() {
    let g = pin();
    let a = Box::leak(Box::new(DAtomic::new(8)));
    let b = Box::leak(Box::new(DAtomic::new(16)));
    let mut h = DescHandle::new();
    h.set_first(a, 8, 24, 0);
    h.set_second(b, 16, 32, 0);
    let w = test_support::announce_only(h).expect("announce succeeds");
    // Interfere: change word 2 before any helper arrives.
    assert!(b.cas_word(16, 48));
    // A reader of word 1 helps; the DCAS must fail and revert word 1.
    assert_eq!(a.read(&g), 8);
    assert_eq!(b.read(&g), 48);
    let r = unsafe { test_support::resume(w, &g) };
    assert_eq!(r, DcasResult::SecondFailed);
    unsafe { test_support::retire_announced(w) };
}

#[test]
fn concurrent_helpers_agree_on_result() {
    // Many threads all help the same stalled announcement; the pair must
    // swing exactly once and everyone must report the same result.
    let a = Box::leak(Box::new(DAtomic::new(8)));
    let b = Box::leak(Box::new(DAtomic::new(16)));
    let mut h = DescHandle::new();
    h.set_first(a, 8, 24, 0);
    h.set_second(b, 16, 32, 0);
    let w = test_support::announce_only(h).expect("announce succeeds");

    let results: Vec<DcasResult> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                s.spawn(move || {
                    let g = pin();
                    unsafe { test_support::resume(w, &g) }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in &results {
        assert_eq!(*r, DcasResult::Success, "all helpers agree (Lemma 2)");
    }
    let g = pin();
    assert_eq!(a.read(&g), 24);
    assert_eq!(b.read(&g), 32);
    unsafe { test_support::retire_announced(w) };
}

#[test]
fn pairwise_atomicity_under_contention() {
    // Invariant: word2 == word1 + 8 at every successful DCAS instant.
    // Each thread reads word1, *derives* the expected word2 without reading
    // it, and attempts (w1 -> w1+8, w1+8 -> w1+16). A success proves both
    // expectations held simultaneously; any torn DCAS would strand the pair
    // and no further success could occur (detected by the success count).
    const THREADS: usize = 8;
    const SUCCESSES_PER_THREAD: usize = 2_000;

    let a = Arc::new(DAtomic::new(0));
    let b = Arc::new(DAtomic::new(8));
    let total = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let a = a.clone();
            let b = b.clone();
            let total = total.clone();
            s.spawn(move || {
                let g = pin();
                let mut done = 0;
                while done < SUCCESSES_PER_THREAD {
                    let w1 = a.read(&g);
                    let expected_w2 = w1 + 8;
                    let mut h = DescHandle::new();
                    h.set_first(&a, w1, w1 + 8, 0);
                    h.set_second(&b, expected_w2, expected_w2 + 8, 0);
                    if let (DcasResult::Success, _) = h.commit(&g) {
                        done += 1;
                        total.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    let g = pin();
    let n = total.load(Ordering::Relaxed);
    assert_eq!(n, THREADS * SUCCESSES_PER_THREAD);
    assert_eq!(a.read(&g), 8 * n);
    assert_eq!(b.read(&g), 8 * n + 8);
}

#[test]
fn disjoint_pairs_proceed_independently() {
    // Requirement 2 analogue at the DCAS level: operations on disjoint word
    // pairs must all succeed without interference.
    let words: Vec<Arc<DAtomic>> = (0..16).map(|i| Arc::new(DAtomic::new(i * 8))).collect();
    std::thread::scope(|s| {
        for t in 0..8usize {
            let w1 = words[2 * t].clone();
            let w2 = words[2 * t + 1].clone();
            s.spawn(move || {
                let g = pin();
                for k in 0..1_000usize {
                    let o1 = w1.read(&g);
                    let o2 = w2.read(&g);
                    let mut h = DescHandle::new();
                    h.set_first(&w1, o1, o1 + 8, 0);
                    h.set_second(&w2, o2, o2 + 8, 0);
                    let (r, _) = h.commit(&g);
                    assert_eq!(
                        r,
                        DcasResult::Success,
                        "thread {t} iter {k}: no contention, must succeed"
                    );
                }
            });
        }
    });
}

#[test]
fn shared_second_word_serializes() {
    // Several DCASes share word B but have private word As. Every success
    // bumps B by 8; total successes must equal B's total advance.
    const THREADS: usize = 6;
    const ITERS: usize = 3_000;
    let shared = Arc::new(DAtomic::new(0));
    let privates: Vec<Arc<DAtomic>> = (0..THREADS).map(|_| Arc::new(DAtomic::new(0))).collect();
    let successes = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|s| {
        for mine in privates.iter() {
            let shared = shared.clone();
            let successes = successes.clone();
            s.spawn(move || {
                let g = pin();
                for _ in 0..ITERS {
                    let o1 = mine.read(&g);
                    let o2 = shared.read(&g);
                    let mut h = DescHandle::new();
                    h.set_first(mine, o1, o1 + 8, 0);
                    h.set_second(&shared, o2, o2 + 8, 0);
                    if let (DcasResult::Success, _) = h.commit(&g) {
                        successes.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    let g = pin();
    let s = successes.load(Ordering::Relaxed);
    assert_eq!(
        shared.read(&g),
        8 * s,
        "every success advanced the shared word once"
    );
    let private_sum: usize = privates.iter().map(|p| p.read(&g)).sum();
    assert_eq!(
        private_sum,
        8 * s,
        "every success advanced exactly one private word"
    );
}

#[test]
fn aliased_words_fail_rather_than_corrupt() {
    // A DCAS whose two words coincide can never satisfy both expectations
    // through the protocol; it must fail cleanly and leave the word intact.
    let g = pin();
    let a = DAtomic::new(8);
    let mut h = DescHandle::new();
    h.set_first(&a, 8, 16, 0);
    h.set_second(&a, 8, 24, 0);
    let (r, _next) = h.commit(&g);
    assert_eq!(r, DcasResult::SecondFailed);
    assert_eq!(a.read(&g), 8, "word untouched after aliased attempt");
}

#[test]
fn descriptors_do_not_leak() {
    // Outstanding pool blocks must not grow without bound across many
    // committed descriptors.
    let g = pin();
    let a = DAtomic::new(0);
    let b = DAtomic::new(0);
    for i in 0..20_000usize {
        let o = i * 8;
        let mut h = DescHandle::new();
        h.set_first(&a, o, o + 8, 0);
        h.set_second(&b, o, o + 8, 0);
        let (r, _) = h.commit(&g);
        assert_eq!(r, DcasResult::Success);
    }
    lfc_hazard::flush();
    assert!(
        lfc_hazard::pending_retired() < 10_000,
        "retired descriptors must be reclaimed (pending {})",
        lfc_hazard::pending_retired()
    );
}

#[test]
fn dropped_unpublished_handle_is_freed() {
    let before = lfc_alloc::outstanding();
    for _ in 0..100 {
        let h = DescHandle::new();
        drop(h);
    }
    assert!(lfc_alloc::outstanding() <= before + 1);
}
