//! Deterministic coverage of the unified k-entry commit
//! (`lfc_dcas::engine::commit_entries`) across its three regimes.
//!
//! This file intentionally holds **one** test function: integration tests
//! in one binary run on a thread pool, and a sibling test's `pin()` would
//! register a second thread and disable the solo regime. With a single
//! test, the solo branch is guaranteed taken for the first phase, and the
//! spawned-thread phase guarantees the published K=2 (DCAS) and K>2 (CASN)
//! dispatches — all asserted against the same all-or-nothing contract.

use lfc_dcas::kcas::counters as kcounters;
use lfc_dcas::{commit_entries, CasnEntry, CasnResult, DAtomic, MAX_ENTRIES};
use lfc_hazard::pin;

fn entry(w: &DAtomic, old: usize, new: usize) -> CasnEntry {
    CasnEntry {
        ptr: w,
        old,
        new,
        hp: 0,
    }
}

fn commit(entries: &[CasnEntry], g: &lfc_hazard::Guard) -> CasnResult {
    // Safety: every entry in this file is built by `entry` from a `&DAtomic`
    // that outlives the call, over pairwise-distinct words.
    unsafe { commit_entries(entries, g) }
}

#[test]
fn unified_commit_covers_solo_dcas_and_casn_regimes() {
    let g = pin();
    assert_eq!(
        lfc_runtime::active_threads(),
        1,
        "this binary must contain exactly this one test"
    );

    // --- Phase 1: solo regime, every supported width. ---
    for k in 2..=MAX_ENTRIES {
        let words: Vec<DAtomic> = (0..k).map(|i| DAtomic::new(i * 8)).collect();
        let ok: Vec<CasnEntry> = words
            .iter()
            .enumerate()
            .map(|(i, w)| entry(w, i * 8, i * 8 + 8))
            .collect();
        assert_eq!(commit(&ok, &g), CasnResult::Success);
        for (i, w) in words.iter().enumerate() {
            assert_eq!(w.read(&g), i * 8 + 8, "k={k}: every word swung");
        }

        // Last-entry mismatch: the whole prefix must be rolled back and the
        // failing index reported (the generalized FIRSTFAILED/SECONDFAILED).
        let bad: Vec<CasnEntry> = words
            .iter()
            .enumerate()
            .map(|(i, w)| {
                if i == k - 1 {
                    entry(w, 0xBAD0, 1 << 4)
                } else {
                    entry(w, i * 8 + 8, i * 8 + 16)
                }
            })
            .collect();
        assert_eq!(commit(&bad, &g), CasnResult::FailedAt(k - 1));
        for (i, w) in words.iter().enumerate() {
            assert_eq!(w.read(&g), i * 8 + 8, "k={k}: nothing left changed");
        }
    }
    // Solo commits build no descriptors at all.
    assert_eq!(
        kcounters::casn_pool_hits() + kcounters::casn_pool_misses(),
        0,
        "the solo regime must never allocate a CASN descriptor"
    );

    // --- Phase 2: a second registered thread forces the published paths. ---
    let (stop_tx, stop_rx) = std::sync::mpsc::channel::<()>();
    let (ready_tx, ready_rx) = std::sync::mpsc::channel::<()>();
    let blocker = std::thread::spawn(move || {
        let _g = pin();
        ready_tx.send(()).unwrap();
        stop_rx.recv().ok();
    });
    ready_rx.recv().unwrap();
    assert!(lfc_runtime::active_threads() > 1, "solo regime disabled");

    // K=2 dispatch: the paper's DCAS protocol, with the failing index
    // translated from FIRSTFAILED/SECONDFAILED.
    let a = DAtomic::new(0);
    let b = DAtomic::new(8);
    assert_eq!(
        commit(&[entry(&a, 0, 16), entry(&b, 8, 24)], &g),
        CasnResult::Success
    );
    assert_eq!((a.read(&g), b.read(&g)), (16, 24));
    assert_eq!(
        commit(&[entry(&a, 0xBAD0, 1 << 4), entry(&b, 24, 32)], &g),
        CasnResult::FailedAt(0)
    );
    assert_eq!(
        commit(&[entry(&a, 16, 32), entry(&b, 0xBAD0, 1 << 4)], &g),
        CasnResult::FailedAt(1)
    );
    assert_eq!((a.read(&g), b.read(&g)), (16, 24), "nothing left changed");

    // K=3 dispatch: the CASN protocol, now pooled — steady-state commits
    // must recycle descriptors instead of falling through to `lfc-alloc`.
    let words: Vec<DAtomic> = (0..3).map(|i| DAtomic::new(i * 8)).collect();
    let miss0 = kcounters::casn_pool_misses() + kcounters::rdcss_pool_misses();
    for round in 0..60usize {
        let es: Vec<CasnEntry> = words
            .iter()
            .enumerate()
            .map(|(i, w)| entry(w, i * 8 + round * 8, i * 8 + round * 8 + 8))
            .collect();
        assert_eq!(commit(&es, &g), CasnResult::Success);
        // Retired descriptors come back through the hazard domain; a flush
        // per iteration makes the recycling deterministic for the assert.
        lfc_hazard::flush();
    }
    assert!(
        kcounters::casn_pool_hits() > 0 && kcounters::rdcss_pool_hits() > 0,
        "steady-state CASN commits must reuse pooled descriptors (casn hits {}, rdcss hits {})",
        kcounters::casn_pool_hits(),
        kcounters::rdcss_pool_hits()
    );
    let misses = kcounters::casn_pool_misses() + kcounters::rdcss_pool_misses() - miss0;
    assert!(
        misses <= 16,
        "steady-state misses must be bounded by the warmup burst, got {misses}"
    );

    stop_tx.send(()).unwrap();
    blocker.join().unwrap();
}
