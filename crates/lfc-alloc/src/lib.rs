//! The paper's lock-free memory manager (§6):
//!
//! > "All implementations used the same lock-free memory manager. Freed
//! > nodes are placed on a local list with a capacity of 200 nodes. When the
//! > list is full it is placed on a global lock-free stack. A process that
//! > requires more nodes accesses the global stack to get a new list of free
//! > nodes."
//!
//! Blocks are grouped into power-of-two size classes. Each thread keeps a
//! *magazine* (the paper's local list, capacity [`LOCAL_CAP`]) per class;
//! full magazines are pushed as a unit onto a global Treiber stack whose
//! head is tag-stamped to defeat ABA, and threads that run dry pop a whole
//! magazine back. Only when both levels are empty does the manager fall
//! through to the system allocator.
//!
//! This crate is deliberately independent of the hazard-pointer domain:
//! callers (the structures and the DCAS layer) must only hand blocks back
//! once they are unreachable — which they guarantee by routing frees through
//! `lfc-hazard::retire`.

#![warn(missing_docs)]

use lfc_runtime::{on_thread_exit, thread_is_exiting, CachePadded};
use std::alloc::Layout;
use std::cell::Cell;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Capacity of a thread-local free list, from the paper.
pub const LOCAL_CAP: usize = 200;

/// Size classes (bytes). Each class allocates `Layout::from_size_align(c, c)`
/// so any allocation with `align <= size <= c` fits; class 512 serves the
/// 512-aligned DCAS descriptors.
pub const CLASS_SIZES: [usize; 7] = [16, 32, 64, 128, 256, 512, 1024];

const NUM_CLASSES: usize = CLASS_SIZES.len();

const ADDR_MASK: u64 = (1 << 48) - 1;

/// Statistics snapshot, see [`stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Blocks obtained from the system allocator.
    pub fresh: usize,
    /// Blocks served from a magazine or the global stack.
    pub recycled: usize,
    /// Blocks returned by callers.
    pub freed: usize,
    /// Oversized allocations that bypassed the pool entirely.
    pub oversize: usize,
}

// Each counter padded to its own line: FREED is bumped on every free by
// every thread and would otherwise false-share with FRESH/RECYCLED bumped
// on every allocation.
static FRESH: CachePadded<AtomicUsize> = CachePadded::new(AtomicUsize::new(0));
static RECYCLED: CachePadded<AtomicUsize> = CachePadded::new(AtomicUsize::new(0));
static FREED: CachePadded<AtomicUsize> = CachePadded::new(AtomicUsize::new(0));
static OVERSIZE: CachePadded<AtomicUsize> = CachePadded::new(AtomicUsize::new(0));

/// A full (or partial, on thread exit) magazine pushed to the global stack.
struct Segment {
    items: Vec<*mut u8>,
    next: *mut Segment,
}

/// Treiber stack of segments with a 16-bit tag in the head word's high bits;
/// the tag increments on every push so a popped-and-reused segment address
/// cannot satisfy a stale CAS (the classic counter fix the paper's §7
/// discussion describes for its stack).
struct TaggedStack {
    head: AtomicU64,
}

impl TaggedStack {
    const fn new() -> Self {
        TaggedStack {
            head: AtomicU64::new(0),
        }
    }

    fn push(&self, seg: *mut Segment) {
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            // Safety: `seg` is exclusively ours until the CAS succeeds.
            unsafe { (*seg).next = (head & ADDR_MASK) as *mut Segment };
            let tag = (head >> 48).wrapping_add(1) & 0xFFFF;
            let new = (seg as u64 & ADDR_MASK) | (tag << 48);
            match self
                .head
                .compare_exchange_weak(head, new, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(h) => head = h,
            }
        }
    }

    fn pop(&self) -> Option<Box<Segment>> {
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            let ptr = (head & ADDR_MASK) as *mut Segment;
            if ptr.is_null() {
                return None;
            }
            // Safety: segments are never freed to the OS while on the stack;
            // a stale `ptr` (already popped by someone else) may be read as a
            // reused segment, but the tag makes the CAS fail in that case and
            // the value of `next` is discarded.
            let next = unsafe { (*ptr).next };
            let tag = (head >> 48).wrapping_add(1) & 0xFFFF;
            let new = (next as u64 & ADDR_MASK) | (tag << 48);
            match self
                .head
                .compare_exchange_weak(head, new, Ordering::AcqRel, Ordering::Acquire)
            {
                // Safety: we won the pop; the segment is exclusively ours.
                Ok(_) => return Some(unsafe { Box::from_raw(ptr) }),
                Err(h) => head = h,
            }
        }
    }
}

// One padded stack head per size class: pushes to one class must not
// invalidate the cached head of a neighbouring class (the heads are 8
// bytes; unpadded, all seven shared one line).
static GLOBAL: [CachePadded<TaggedStack>; NUM_CLASSES] =
    [const { CachePadded::new(TaggedStack::new()) }; NUM_CLASSES];

struct Magazines {
    local: [Vec<*mut u8>; NUM_CLASSES],
}

thread_local! {
    static MAGS: Cell<*mut Magazines> = const { Cell::new(std::ptr::null_mut()) };
}

fn with_mags<R>(f: impl FnOnce(&mut Magazines) -> R) -> R {
    MAGS.with(|cell| {
        let mut p = cell.get();
        if p.is_null() {
            p = Box::into_raw(Box::new(Magazines {
                local: std::array::from_fn(|_| Vec::new()),
            }));
            cell.set(p);
            on_thread_exit(Box::new(move || {
                MAGS.with(|c| c.set(std::ptr::null_mut()));
                // Safety: created above, hook runs once per thread.
                let mags = unsafe { Box::from_raw(p) };
                for (class, items) in mags.local.into_iter().enumerate() {
                    if !items.is_empty() {
                        GLOBAL[class].push(Box::into_raw(Box::new(Segment {
                            items,
                            next: std::ptr::null_mut(),
                        })));
                    }
                }
            }));
        }
        // Safety: thread-exclusive, not re-entered.
        f(unsafe { &mut *p })
    })
}

/// Smallest class covering `layout`, or `None` if it is oversized.
fn class_for(layout: Layout) -> Option<usize> {
    let need = layout.size().max(layout.align()).max(1);
    CLASS_SIZES.iter().position(|&c| c >= need)
}

fn class_layout(class: usize) -> Layout {
    let c = CLASS_SIZES[class];
    Layout::from_size_align(c, c).expect("class sizes are power-of-two")
}

/// Allocation failure: the system allocator returned null, or the
/// `alloc.block` fault site fired (`lfc_runtime::fault`). Surfaced through
/// every `try_*` operation in the stack instead of aborting the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocError;

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("lfc-alloc: block allocation failed")
    }
}

impl std::error::Error for AllocError {}

/// Allocate a block that satisfies `layout`.
///
/// Never returns null; panics (unwinds — it does **not** abort, so a
/// caller under `catch_unwind` keeps the global state helpable) on
/// allocation failure. Fallible callers use [`try_alloc_block`].
pub fn alloc_block(layout: Layout) -> NonNull<u8> {
    try_alloc_block(layout).unwrap_or_else(|_| panic!("lfc-alloc: allocation of {layout:?} failed"))
}

/// Fallible [`alloc_block`]: returns `Err(AllocError)` when the system
/// allocator fails or the `alloc.block` fault-injection site fires.
pub fn try_alloc_block(layout: Layout) -> Result<NonNull<u8>, AllocError> {
    if lfc_runtime::fault::check("alloc.block") {
        return Err(AllocError);
    }
    if thread_is_exiting() {
        // Thread-exit fallback: no per-thread cache may be (re)created now.
        let Some(class) = class_for(layout) else {
            OVERSIZE.fetch_add(1, Ordering::Relaxed);
            // Safety: non-zero size.
            let p = unsafe { std::alloc::alloc(layout) };
            return NonNull::new(p).ok_or(AllocError);
        };
        FRESH.fetch_add(1, Ordering::Relaxed);
        let l = class_layout(class);
        // Safety: non-zero size.
        let p = unsafe { std::alloc::alloc(l) };
        return NonNull::new(p).ok_or(AllocError);
    }
    let Some(class) = class_for(layout) else {
        OVERSIZE.fetch_add(1, Ordering::Relaxed);
        // Safety: oversized layouts always have non-zero size here.
        let p = unsafe { std::alloc::alloc(layout) };
        return NonNull::new(p).ok_or(AllocError);
    };
    let recycled = with_mags(|m| {
        if let Some(p) = m.local[class].pop() {
            return Some(p);
        }
        if let Some(seg) = GLOBAL[class].pop() {
            m.local[class] = seg.items;
            return m.local[class].pop();
        }
        None
    });
    match recycled {
        Some(p) => {
            RECYCLED.fetch_add(1, Ordering::Relaxed);
            // Safety: recycled blocks came from `alloc` with the class layout.
            Ok(NonNull::new(p).expect("pool never stores null"))
        }
        None => {
            FRESH.fetch_add(1, Ordering::Relaxed);
            let l = class_layout(class);
            // Safety: class layouts have non-zero size.
            let p = unsafe { std::alloc::alloc(l) };
            NonNull::new(p).ok_or(AllocError)
        }
    }
}

/// Return a block previously obtained from [`alloc_block`] with an
/// equivalent `layout`.
///
/// # Safety
///
/// `ptr` must come from `alloc_block(layout)` (same size-class) and must not
/// be used afterwards.
pub unsafe fn free_block(ptr: *mut u8, layout: Layout) {
    FREED.fetch_add(1, Ordering::Relaxed);
    #[cfg(lfc_model)]
    {
        // Inside a model execution the block is *quarantined* instead of
        // freed: kept mapped (and out of the recycling pool) until the
        // execution ends, so a stale access is defined behaviour the
        // model's shadow memory detects and reports as a use-after-free
        // with a replayable schedule, rather than real UB.
        let l = class_for(layout).map(class_layout).unwrap_or(layout);
        // Safety: every pooled block was obtained from `std::alloc` with
        // its class layout (oversized ones with `layout` itself), which is
        // exactly what we hand the quarantine for the final release.
        if unsafe { lfc_model::rt::quarantine_block(ptr, l.size(), l.align()) } {
            return;
        }
    }
    if thread_is_exiting() {
        // Thread-exit fallback: every pooled block originally came from the
        // system allocator with its class layout, so direct deallocation is
        // always valid.
        let l = class_for(layout).map(class_layout).unwrap_or(layout);
        // Safety: forwarded contract.
        unsafe { std::alloc::dealloc(ptr, l) };
        return;
    }
    let Some(class) = class_for(layout) else {
        // Safety: forwarded contract.
        unsafe { std::alloc::dealloc(ptr, layout) };
        return;
    };
    with_mags(|m| {
        let list = &mut m.local[class];
        list.push(ptr);
        if list.len() >= LOCAL_CAP {
            let items = std::mem::take(list);
            GLOBAL[class].push(Box::into_raw(Box::new(Segment {
                items,
                next: std::ptr::null_mut(),
            })));
        }
    });
}

/// Current counters.
pub fn stats() -> AllocStats {
    AllocStats {
        fresh: FRESH.load(Ordering::Relaxed),
        recycled: RECYCLED.load(Ordering::Relaxed),
        freed: FREED.load(Ordering::Relaxed),
        oversize: OVERSIZE.load(Ordering::Relaxed),
    }
}

/// Blocks currently held by callers (allocated and not yet freed). Cached
/// blocks in magazines / the global stack do not count as outstanding.
pub fn outstanding() -> usize {
    let s = stats();
    (s.fresh + s.recycled + s.oversize).saturating_sub(s.freed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(size: usize, align: usize) -> Layout {
        Layout::from_size_align(size, align).unwrap()
    }

    #[test]
    fn class_selection() {
        assert_eq!(class_for(l(1, 1)), Some(0)); // 16
        assert_eq!(class_for(l(16, 8)), Some(0));
        assert_eq!(class_for(l(17, 8)), Some(1)); // 32
        assert_eq!(class_for(l(24, 8)), Some(1));
        assert_eq!(class_for(l(80, 512)), Some(5)); // descriptor: align drives it
        assert_eq!(class_for(l(1024, 8)), Some(6));
        assert_eq!(class_for(l(1025, 8)), None);
    }

    #[test]
    fn alloc_is_aligned() {
        for (size, align) in [(8usize, 8usize), (24, 8), (72, 512), (100, 64)] {
            let layout = l(size, align);
            let p = alloc_block(layout);
            assert_eq!(p.as_ptr() as usize % align, 0, "align {align}");
            unsafe { free_block(p.as_ptr(), layout) };
        }
    }

    #[test]
    fn recycling_reuses_blocks() {
        let layout = l(64, 64);
        let p1 = alloc_block(layout);
        let addr = p1.as_ptr() as usize;
        unsafe { free_block(p1.as_ptr(), layout) };
        // LIFO magazine: the very next alloc of the class reuses it.
        let p2 = alloc_block(layout);
        assert_eq!(p2.as_ptr() as usize, addr);
        unsafe { free_block(p2.as_ptr(), layout) };
    }

    #[test]
    fn writes_to_distinct_blocks_do_not_alias() {
        let layout = l(32, 8);
        let blocks: Vec<NonNull<u8>> = (0..256).map(|_| alloc_block(layout)).collect();
        for (i, b) in blocks.iter().enumerate() {
            unsafe { *(b.as_ptr() as *mut u64) = i as u64 };
        }
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(unsafe { *(b.as_ptr() as *mut u64) }, i as u64);
        }
        for b in blocks {
            unsafe { free_block(b.as_ptr(), layout) };
        }
    }

    #[test]
    fn magazine_overflow_moves_to_global_and_back() {
        let layout = l(128, 8);
        // Allocate and free more than LOCAL_CAP blocks so at least one full
        // magazine is pushed to the global stack.
        let blocks: Vec<_> = (0..LOCAL_CAP * 2 + 10)
            .map(|_| alloc_block(layout))
            .collect();
        for b in &blocks {
            unsafe { free_block(b.as_ptr(), layout) };
        }
        // Pull them all back; should be served from the pool, not malloc.
        let before = stats();
        let again: Vec<_> = (0..LOCAL_CAP * 2).map(|_| alloc_block(layout)).collect();
        let after = stats();
        assert!(
            after.recycled - before.recycled >= LOCAL_CAP,
            "most blocks should be recycled (recycled delta {})",
            after.recycled - before.recycled
        );
        for b in again {
            unsafe { free_block(b.as_ptr(), layout) };
        }
    }

    #[test]
    fn oversize_falls_through() {
        let layout = l(4096, 8);
        let before = stats().oversize;
        let p = alloc_block(layout);
        unsafe { *(p.as_ptr() as *mut u64) = 42 };
        unsafe { free_block(p.as_ptr(), layout) };
        assert!(stats().oversize > before);
    }

    #[test]
    fn cross_thread_recycling_via_global_stack() {
        let layout = l(256, 8);
        // Worker fills the global stack with one magazine worth of blocks.
        std::thread::spawn(move || {
            let blocks: Vec<_> = (0..LOCAL_CAP).map(|_| alloc_block(layout)).collect();
            for b in blocks {
                unsafe { free_block(b.as_ptr(), layout) };
            }
            // Thread exit flushes the partial magazine to the global stack.
        })
        .join()
        .unwrap();
        let before = stats();
        let mine: Vec<_> = (0..LOCAL_CAP / 2).map(|_| alloc_block(layout)).collect();
        let after = stats();
        assert!(
            after.recycled > before.recycled,
            "this thread should recycle blocks freed by the worker"
        );
        for b in mine {
            unsafe { free_block(b.as_ptr(), layout) };
        }
    }

    #[test]
    fn concurrent_alloc_free_stress() {
        let mut handles = Vec::new();
        for _ in 0..4 {
            handles.push(std::thread::spawn(|| {
                let layout = l(48, 8);
                let mut held = Vec::new();
                for i in 0..20_000u64 {
                    let p = alloc_block(layout);
                    unsafe { *(p.as_ptr() as *mut u64) = i };
                    held.push(p);
                    if held.len() > 32 {
                        let victim = held.swap_remove((i % 33) as usize);
                        unsafe { free_block(victim.as_ptr(), layout) };
                    }
                }
                for p in held {
                    unsafe { free_block(p.as_ptr(), layout) };
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn tagged_stack_push_pop() {
        let s = TaggedStack::new();
        assert!(s.pop().is_none());
        for i in 0..10 {
            s.push(Box::into_raw(Box::new(Segment {
                items: vec![i as *mut u8],
                next: std::ptr::null_mut(),
            })));
        }
        let mut seen = Vec::new();
        while let Some(seg) = s.pop() {
            seen.push(seg.items[0] as usize);
        }
        assert_eq!(seen.len(), 10);
        assert_eq!(seen, (0..10).rev().collect::<Vec<_>>(), "LIFO order");
    }
}
