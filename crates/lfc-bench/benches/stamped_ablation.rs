//! Experiment ABA: the paper's §7 discussion attributes the stack's poor
//! move-only numbers to *false helping* — the D14 ABA where a recently
//! moved element reappears as the expected `old2` and delayed helpers
//! install stale marked descriptors that must be reverted. Adding a version
//! counter to the top pointer removes the effect at a small cost to normal
//! operations.
//!
//! This bench measures stack↔stack move throughput for the plain Treiber
//! top vs the stamped top, and prints the `stale_mark_reverts` counter delta
//! (each revert is one false-helping episode).

use lfc_bench::harness::{bench, bench_custom, report, Measurement};
use lfc_core::move_one;
use lfc_structures::{StampedStack, TreiberStack};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};

fn move_throughput() -> Vec<Measurement> {
    let mut out = Vec::new();

    out.push(bench_custom("stack_stack_move_2thr/treiber", |iters| {
        let x: TreiberStack<u64> = TreiberStack::new();
        let y: TreiberStack<u64> = TreiberStack::new();
        for i in 0..64 {
            x.push(i);
        }
        let stop = AtomicBool::new(false);
        std::thread::scope(|sc| {
            let (xr, yr, stopr) = (&x, &y, &stop);
            sc.spawn(move || {
                while !stopr.load(Ordering::Relaxed) {
                    let _ = move_one(yr, xr);
                }
            });
            let start = std::time::Instant::now();
            for _ in 0..iters {
                black_box(move_one(&x, &y));
            }
            let e = start.elapsed();
            stop.store(true, Ordering::Relaxed);
            e
        })
    }));

    out.push(bench_custom("stack_stack_move_2thr/stamped", |iters| {
        let x: StampedStack<u64> = StampedStack::new();
        let y: StampedStack<u64> = StampedStack::new();
        for i in 0..64 {
            x.push(i);
        }
        let stop = AtomicBool::new(false);
        std::thread::scope(|sc| {
            let (xr, yr, stopr) = (&x, &y, &stop);
            sc.spawn(move || {
                while !stopr.load(Ordering::Relaxed) {
                    let _ = move_one(yr, xr);
                }
            });
            let start = std::time::Instant::now();
            for _ in 0..iters {
                black_box(move_one(&x, &y));
            }
            let e = start.elapsed();
            stop.store(true, Ordering::Relaxed);
            e
        })
    }));

    out
}

fn normal_op_cost() -> Vec<Measurement> {
    // The paper's caveat: the counter "somewhat lowers the performance of
    // the normal insert and remove operations".
    let mut out = Vec::new();
    let t: TreiberStack<u64> = TreiberStack::new();
    out.push(bench("stack_normal_ops/treiber_push_pop", || {
        t.push(black_box(1));
        black_box(t.pop());
    }));
    let s: StampedStack<u64> = StampedStack::new();
    out.push(bench("stack_normal_ops/stamped_push_pop", || {
        s.push(black_box(1));
        black_box(s.pop());
    }));
    out
}

fn false_helping_report() {
    // The ABA needs several helpers racing the same hot words plus
    // preemption (paper §7 saw it at 16 threads); run 6 movers per flavour.
    const ROUNDS: usize = 30_000;
    const MOVERS: usize = 3;
    for stamped in [false, true] {
        let before = lfc_dcas::counters::stale_mark_reverts();
        if stamped {
            let x: StampedStack<u64> = StampedStack::new();
            let y: StampedStack<u64> = StampedStack::new();
            x.push(1);
            x.push(2);
            std::thread::scope(|sc| {
                let (xr, yr) = (&x, &y);
                for _ in 0..MOVERS {
                    sc.spawn(move || {
                        for _ in 0..ROUNDS {
                            let _ = move_one(yr, xr);
                        }
                    });
                    sc.spawn(move || {
                        for _ in 0..ROUNDS {
                            let _ = move_one(xr, yr);
                        }
                    });
                }
            });
        } else {
            let x: TreiberStack<u64> = TreiberStack::new();
            let y: TreiberStack<u64> = TreiberStack::new();
            x.push(1);
            x.push(2);
            std::thread::scope(|sc| {
                let (xr, yr) = (&x, &y);
                for _ in 0..MOVERS {
                    sc.spawn(move || {
                        for _ in 0..ROUNDS {
                            let _ = move_one(yr, xr);
                        }
                    });
                    sc.spawn(move || {
                        for _ in 0..ROUNDS {
                            let _ = move_one(xr, yr);
                        }
                    });
                }
            });
        }
        let delta = lfc_dcas::counters::stale_mark_reverts() - before;
        println!(
            "false-helping episodes over {} move attempts ({}): {}",
            2 * MOVERS * ROUNDS,
            if stamped { "stamped" } else { "treiber" },
            delta
        );
    }
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let mut ms = move_throughput();
    ms.extend(normal_op_cost());
    if json {
        for m in &ms {
            println!("{}", m.to_json());
        }
    } else {
        report("stamped_ablation", &ms);
        false_helping_report();
    }
}
