//! Experiment ABA: the paper's §7 discussion attributes the stack's poor
//! move-only numbers to *false helping* — the D14 ABA where a recently
//! moved element reappears as the expected `old2` and delayed helpers
//! install stale marked descriptors that must be reverted. Adding a version
//! counter to the top pointer removes the effect at a small cost to normal
//! operations.
//!
//! This bench measures stack↔stack move throughput for the plain Treiber
//! top vs the stamped top, and prints the `stale_mark_reverts` counter delta
//! (each revert is one false-helping episode).

use criterion::{criterion_group, criterion_main, Criterion};
use lfc_core::move_one;
use lfc_structures::{StampedStack, TreiberStack};
use std::hint::black_box;
use std::time::Duration;

fn move_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("stack_stack_move_2thr");
    g.measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
        .sample_size(10);

    g.bench_function("treiber", |b| {
        b.iter_custom(|iters| {
            use std::sync::atomic::{AtomicBool, Ordering};
            let x: TreiberStack<u64> = TreiberStack::new();
            let y: TreiberStack<u64> = TreiberStack::new();
            for i in 0..64 {
                x.push(i);
            }
            let stop = AtomicBool::new(false);
            std::thread::scope(|sc| {
                let (xr, yr, stopr) = (&x, &y, &stop);
                sc.spawn(move || {
                    while !stopr.load(Ordering::Relaxed) {
                        let _ = move_one(yr, xr);
                    }
                });
                let start = std::time::Instant::now();
                for _ in 0..iters {
                    black_box(move_one(&x, &y));
                }
                let e = start.elapsed();
                stop.store(true, Ordering::Relaxed);
                e
            })
        })
    });

    g.bench_function("stamped", |b| {
        b.iter_custom(|iters| {
            use std::sync::atomic::{AtomicBool, Ordering};
            let x: StampedStack<u64> = StampedStack::new();
            let y: StampedStack<u64> = StampedStack::new();
            for i in 0..64 {
                x.push(i);
            }
            let stop = AtomicBool::new(false);
            std::thread::scope(|sc| {
                let (xr, yr, stopr) = (&x, &y, &stop);
                sc.spawn(move || {
                    while !stopr.load(Ordering::Relaxed) {
                        let _ = move_one(yr, xr);
                    }
                });
                let start = std::time::Instant::now();
                for _ in 0..iters {
                    black_box(move_one(&x, &y));
                }
                let e = start.elapsed();
                stop.store(true, Ordering::Relaxed);
                e
            })
        })
    });
    g.finish();
}

fn normal_op_cost(c: &mut Criterion) {
    // The paper's caveat: the counter "somewhat lowers the performance of
    // the normal insert and remove operations".
    let mut g = c.benchmark_group("stack_normal_ops");
    g.measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    let t: TreiberStack<u64> = TreiberStack::new();
    g.bench_function("treiber_push_pop", |b| {
        b.iter(|| {
            t.push(black_box(1));
            black_box(t.pop())
        })
    });
    let s: StampedStack<u64> = StampedStack::new();
    g.bench_function("stamped_push_pop", |b| {
        b.iter(|| {
            s.push(black_box(1));
            black_box(s.pop())
        })
    });
    g.finish();
}

fn false_helping_report(c: &mut Criterion) {
    // Not a timing benchmark: runs a fixed two-thread move storm on each
    // stack flavour and reports the false-helping counter delta.
    let mut g = c.benchmark_group("false_helping_counter");
    g.sample_size(10).measurement_time(Duration::from_secs(1));
    g.bench_function("report", |b| {
        b.iter(|| 1); // keep criterion happy; the work happens below once
    });
    g.finish();

    // The ABA needs several helpers racing the same hot words plus
    // preemption (paper §7 saw it at 16 threads); run 6 movers per flavour.
    const ROUNDS: usize = 30_000;
    const MOVERS: usize = 3;
    for stamped in [false, true] {
        let before = lfc_dcas::counters::stale_mark_reverts();
        if stamped {
            let x: StampedStack<u64> = StampedStack::new();
            let y: StampedStack<u64> = StampedStack::new();
            x.push(1);
            x.push(2);
            std::thread::scope(|sc| {
                let (xr, yr) = (&x, &y);
                for _ in 0..MOVERS {
                    sc.spawn(move || {
                        for _ in 0..ROUNDS {
                            let _ = move_one(yr, xr);
                        }
                    });
                    sc.spawn(move || {
                        for _ in 0..ROUNDS {
                            let _ = move_one(xr, yr);
                        }
                    });
                }
            });
        } else {
            let x: TreiberStack<u64> = TreiberStack::new();
            let y: TreiberStack<u64> = TreiberStack::new();
            x.push(1);
            x.push(2);
            std::thread::scope(|sc| {
                let (xr, yr) = (&x, &y);
                for _ in 0..MOVERS {
                    sc.spawn(move || {
                        for _ in 0..ROUNDS {
                            let _ = move_one(yr, xr);
                        }
                    });
                    sc.spawn(move || {
                        for _ in 0..ROUNDS {
                            let _ = move_one(xr, yr);
                        }
                    });
                }
            });
        }
        let delta = lfc_dcas::counters::stale_mark_reverts() - before;
        println!(
            "false-helping episodes over {} move attempts ({}): {}",
            2 * MOVERS * ROUNDS,
            if stamped { "stamped" } else { "treiber" },
            delta
        );
    }
}

criterion_group!(benches, move_throughput, normal_op_cost, false_helping_report);
criterion_main!(benches);
