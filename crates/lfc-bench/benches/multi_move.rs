//! Experiment MOVEN: cost of the n-object move (paper §8 extension) and
//! the four-entry swap, now all riding the unified composition engine.
//!
//! The fan-out scaling and swap measurements are the tracked micro-suite
//! (`lfc_bench::micro::multi`, shared with `reproduce bench`); this target
//! additionally compares the 1-target path (the engine's K=2 / DCAS
//! dispatch) against `move_one` — since PR 2 both are the *same* engine,
//! so the gap the seed measured between the two entry points should be
//! gone.

use lfc_bench::harness::{bench, report, Measurement};
use lfc_bench::micro;
use lfc_core::{move_one, move_to_all, MoveOutcome};
use lfc_structures::MsQueue;

fn dcas_vs_casn_single_target() -> Vec<Measurement> {
    let mut out = Vec::new();
    {
        let src: MsQueue<u64> = MsQueue::new();
        let dst: MsQueue<u64> = MsQueue::new();
        src.enqueue(1);
        out.push(bench("single_target_move/move_one_dcas", || {
            assert_eq!(move_one(&src, &dst), MoveOutcome::Moved);
            assert_eq!(move_one(&dst, &src), MoveOutcome::Moved);
        }));
    }
    {
        let src: MsQueue<u64> = MsQueue::new();
        let dst: MsQueue<u64> = MsQueue::new();
        src.enqueue(1);
        out.push(bench("single_target_move/move_to_all_casn", || {
            assert_eq!(move_to_all(&src, &[&dst]), MoveOutcome::Moved);
            src.enqueue(dst.dequeue().unwrap());
        }));
    }
    out
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let mut ms = micro::multi();
    ms.extend(dcas_vs_casn_single_target());
    if json {
        for m in &ms {
            println!("{}", m.to_json());
        }
    } else {
        report("multi_move", &ms);
    }
}
