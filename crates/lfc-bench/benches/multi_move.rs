//! Experiment MOVEN: cost of the n-object move (paper §8 extension).
//!
//! Measures `move_to_all` latency as the number of targets grows (each
//! extra target adds one CASN entry = one RDCSS install + one swing), and
//! compares the 1-target CASN-based move against the DCAS-based `move_one`
//! (the paper's DCAS needs fewer CASes — this quantifies the gap).

use lfc_bench::harness::{bench, report, Measurement};
use lfc_core::{move_one, move_to_all, MoveOutcome};
use lfc_structures::MsQueue;
use std::hint::black_box;

fn multi_move_scaling() -> Vec<Measurement> {
    let mut out = Vec::new();
    for n in 1..=5usize {
        let src: MsQueue<u64> = MsQueue::new();
        let dsts: Vec<MsQueue<u64>> = (0..n).map(|_| MsQueue::new()).collect();
        let refs: Vec<&MsQueue<u64>> = dsts.iter().collect();
        src.enqueue(1);
        out.push(bench(&format!("move_to_all/targets_{n}"), || {
            let r = move_to_all(&src, &refs);
            assert_eq!(r, MoveOutcome::Moved);
            // Drain the broadcast clones and return the element so the
            // next iteration starts from the same state.
            for (i, d) in dsts.iter().enumerate() {
                let v = d.dequeue().unwrap();
                if i == 0 {
                    src.enqueue(v);
                }
            }
            black_box(r);
        }));
    }
    out
}

fn dcas_vs_casn_single_target() -> Vec<Measurement> {
    let mut out = Vec::new();
    {
        let src: MsQueue<u64> = MsQueue::new();
        let dst: MsQueue<u64> = MsQueue::new();
        src.enqueue(1);
        out.push(bench("single_target_move/move_one_dcas", || {
            assert_eq!(move_one(&src, &dst), MoveOutcome::Moved);
            assert_eq!(move_one(&dst, &src), MoveOutcome::Moved);
        }));
    }
    {
        let src: MsQueue<u64> = MsQueue::new();
        let dst: MsQueue<u64> = MsQueue::new();
        src.enqueue(1);
        out.push(bench("single_target_move/move_to_all_casn", || {
            assert_eq!(move_to_all(&src, &[&dst]), MoveOutcome::Moved);
            src.enqueue(dst.dequeue().unwrap());
        }));
    }
    out
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let mut ms = multi_move_scaling();
    ms.extend(dcas_vs_casn_single_target());
    if json {
        for m in &ms {
            println!("{}", m.to_json());
        }
    } else {
        report("multi_move", &ms);
    }
}
