//! Experiment MOVEN: cost of the n-object move (paper §8 extension).
//!
//! Measures `move_to_all` latency as the number of targets grows (each
//! extra target adds one CASN entry = one RDCSS install + one swing), and
//! compares the 1-target CASN-based move against the DCAS-based `move_one`
//! (the paper's DCAS needs fewer CASes — this quantifies the gap).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lfc_core::{move_one, move_to_all, MoveOutcome};
use lfc_structures::MsQueue;
use std::hint::black_box;
use std::time::Duration;

fn multi_move_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("move_to_all_targets");
    g.measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    for n in 1..=5usize {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let src: MsQueue<u64> = MsQueue::new();
            let dsts: Vec<MsQueue<u64>> = (0..n).map(|_| MsQueue::new()).collect();
            let refs: Vec<&MsQueue<u64>> = dsts.iter().collect();
            src.enqueue(1);
            b.iter(|| {
                let r = move_to_all(&src, &refs);
                assert_eq!(r, MoveOutcome::Moved);
                // Drain the broadcast clones and return the element so the
                // next iteration starts from the same state.
                for (i, d) in dsts.iter().enumerate() {
                    let v = d.dequeue().unwrap();
                    if i == 0 {
                        src.enqueue(v);
                    }
                }
                black_box(r)
            })
        });
    }
    g.finish();
}

fn dcas_vs_casn_single_target(c: &mut Criterion) {
    let mut g = c.benchmark_group("single_target_move");
    g.measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    g.bench_function("move_one_dcas", |b| {
        let src: MsQueue<u64> = MsQueue::new();
        let dst: MsQueue<u64> = MsQueue::new();
        src.enqueue(1);
        b.iter(|| {
            assert_eq!(move_one(&src, &dst), MoveOutcome::Moved);
            assert_eq!(move_one(&dst, &src), MoveOutcome::Moved);
        })
    });

    g.bench_function("move_to_all_casn", |b| {
        let src: MsQueue<u64> = MsQueue::new();
        let dst: MsQueue<u64> = MsQueue::new();
        src.enqueue(1);
        b.iter(|| {
            assert_eq!(move_to_all(&src, &[&dst]), MoveOutcome::Moved);
            src.enqueue(dst.dequeue().unwrap());
        })
    });
    g.finish();
}

criterion_group!(benches, multi_move_scaling, dcas_vs_casn_single_target);
criterion_main!(benches);
