//! Experiment OVH: the paper's claim that "the operations originally
//! supported by the data objects keep their performance behavior" under the
//! methodology. Compares the move-ready queue/stack (scas-transformed, reads
//! through the DCAS `read` operation) against textbook `plain`
//! implementations with identical memory management.
//!
//! Run with `cargo bench -p lfc-bench --bench overhead [-- --json]`; with
//! `--json`, machine-readable results go to stdout, one object per line.

use lfc_bench::harness::report;
use lfc_bench::micro;

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let ms = micro::overhead();
    if json {
        for m in &ms {
            println!("{}", m.to_json());
        }
    } else {
        report("overhead (move-ready vs plain)", &ms);
        println!(
            "\nqueue overhead ratio: {:.3}x   stack overhead ratio: {:.3}x",
            micro::overhead_ratio(&ms, "queue_enqueue_dequeue"),
            micro::overhead_ratio(&ms, "stack_push_pop"),
        );
    }
}
