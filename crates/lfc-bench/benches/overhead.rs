//! Experiment OVH: the paper's claim that "the operations originally
//! supported by the data objects keep their performance behavior" under the
//! methodology. Compares the move-ready queue/stack (scas-transformed, reads
//! through the DCAS `read` operation) against textbook `plain`
//! implementations with identical memory management.

use criterion::{criterion_group, criterion_main, Criterion};
use lfc_structures::{MsQueue, PlainMsQueue, PlainTreiberStack, TreiberStack};
use std::hint::black_box;
use std::time::Duration;

fn queue_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue_enqueue_dequeue");
    g.measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    let plain: PlainMsQueue<u64> = PlainMsQueue::new();
    g.bench_function("plain", |b| {
        b.iter(|| {
            plain.enqueue(black_box(1));
            black_box(plain.dequeue())
        })
    });
    let ready: MsQueue<u64> = MsQueue::new();
    g.bench_function("move_ready", |b| {
        b.iter(|| {
            ready.enqueue(black_box(1));
            black_box(ready.dequeue())
        })
    });
    g.finish();
}

fn stack_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("stack_push_pop");
    g.measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    let plain: PlainTreiberStack<u64> = PlainTreiberStack::new();
    g.bench_function("plain", |b| {
        b.iter(|| {
            plain.push(black_box(1));
            black_box(plain.pop())
        })
    });
    let ready: TreiberStack<u64> = TreiberStack::new();
    g.bench_function("move_ready", |b| {
        b.iter(|| {
            ready.push(black_box(1));
            black_box(ready.pop())
        })
    });
    g.finish();
}

fn contended_queue(c: &mut Criterion) {
    // 2-thread contended throughput: one side runs in a background thread.
    let mut g = c.benchmark_group("queue_contended_2thr");
    g.measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
        .sample_size(10);
    for ready in [false, true] {
        let name = if ready { "move_ready" } else { "plain" };
        g.bench_function(name, |b| {
            b.iter_custom(|iters| {
                use std::sync::atomic::{AtomicBool, Ordering};
                let stop = AtomicBool::new(false);
                if ready {
                    let q: MsQueue<u64> = MsQueue::new();
                    std::thread::scope(|sc| {
                        let qr = &q;
                        let stopr = &stop;
                        sc.spawn(move || {
                            while !stopr.load(Ordering::Relaxed) {
                                qr.enqueue(2);
                                black_box(qr.dequeue());
                            }
                        });
                        let start = std::time::Instant::now();
                        for _ in 0..iters {
                            q.enqueue(black_box(1));
                            black_box(q.dequeue());
                        }
                        let e = start.elapsed();
                        stop.store(true, Ordering::Relaxed);
                        e
                    })
                } else {
                    let q: PlainMsQueue<u64> = PlainMsQueue::new();
                    std::thread::scope(|sc| {
                        let qr = &q;
                        let stopr = &stop;
                        sc.spawn(move || {
                            while !stopr.load(Ordering::Relaxed) {
                                qr.enqueue(2);
                                black_box(qr.dequeue());
                            }
                        });
                        let start = std::time::Instant::now();
                        for _ in 0..iters {
                            q.enqueue(black_box(1));
                            black_box(q.dequeue());
                        }
                        let e = start.elapsed();
                        stop.store(true, Ordering::Relaxed);
                        e
                    })
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, queue_roundtrip, stack_roundtrip, contended_queue);
criterion_main!(benches);
