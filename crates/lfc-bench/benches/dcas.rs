//! Experiment DCAS: cost of the software double-word CAS (§3.2.2).
//!
//! The paper motivates its custom DCAS over Harris et al.'s by needing
//! fewer CASes in the uncontended case; this bench pins down the
//! uncontended latency against the unattainable lower bound of two raw
//! CASes, plus the cost of the `read` operation on a quiet word.

use criterion::{criterion_group, criterion_main, Criterion};
use lfc_dcas::{DAtomic, DcasResult, DescHandle};
use lfc_hazard::pin;
use std::hint::black_box;
use std::time::Duration;

fn dcas_uncontended(c: &mut Criterion) {
    let mut g = c.benchmark_group("dcas");
    g.measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    g.bench_function("success_uncontended", |b| {
        let guard = pin();
        let a = DAtomic::new(0);
        let w = DAtomic::new(0);
        let mut v = 0usize;
        b.iter(|| {
            let mut h = DescHandle::new();
            h.set_first(&a, v, v + 8, 0);
            h.set_second(&w, v, v + 8, 0);
            let (r, _) = h.commit(&guard);
            assert_eq!(r, DcasResult::Success);
            v += 8;
            black_box(v)
        })
    });

    g.bench_function("two_raw_cas_lower_bound", |b| {
        let a = DAtomic::new(0);
        let w = DAtomic::new(0);
        let mut v = 0usize;
        b.iter(|| {
            assert!(a.cas_word(v, v + 8));
            assert!(w.cas_word(v, v + 8));
            v += 8;
            black_box(v)
        })
    });

    g.bench_function("first_failed", |b| {
        let guard = pin();
        let a = DAtomic::new(0);
        let w = DAtomic::new(0);
        b.iter(|| {
            let mut h = DescHandle::new();
            h.set_first(&a, 0xDEAD0, 0xDEAD8, 0); // never matches
            h.set_second(&w, 0, 8, 0);
            let (r, _) = h.commit(&guard);
            assert_eq!(r, DcasResult::FirstFailed);
        })
    });

    g.bench_function("read_quiet_word", |b| {
        let guard = pin();
        let a = DAtomic::new(0x1000);
        b.iter(|| black_box(a.read(&guard)))
    });

    g.bench_function("plain_load_lower_bound", |b| {
        let a = DAtomic::new(0x1000);
        b.iter(|| black_box(a.load_word()))
    });

    g.finish();
}

fn dcas_contended(c: &mut Criterion) {
    let mut g = c.benchmark_group("dcas_contended_2thr");
    g.measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
        .sample_size(10);
    g.bench_function("shared_pair", |b| {
        b.iter_custom(|iters| {
            use std::sync::atomic::{AtomicBool, Ordering};
            let a = DAtomic::new(0);
            let w = DAtomic::new(0);
            let stop = AtomicBool::new(false);
            std::thread::scope(|sc| {
                let (ar, wr, stopr) = (&a, &w, &stop);
                sc.spawn(move || {
                    let guard = pin();
                    while !stopr.load(Ordering::Relaxed) {
                        let o1 = ar.read(&guard);
                        let o2 = wr.read(&guard);
                        let mut h = DescHandle::new();
                        h.set_first(ar, o1, o1 + 8, 0);
                        h.set_second(wr, o2, o2 + 8, 0);
                        let _ = h.commit(&guard);
                    }
                });
                let guard = pin();
                let start = std::time::Instant::now();
                let mut done = 0;
                while done < iters {
                    let o1 = a.read(&guard);
                    let o2 = w.read(&guard);
                    let mut h = DescHandle::new();
                    h.set_first(&a, o1, o1 + 8, 0);
                    h.set_second(&w, o2, o2 + 8, 0);
                    if let (DcasResult::Success, _) = h.commit(&guard) {
                        done += 1;
                    }
                }
                let e = start.elapsed();
                stop.store(true, Ordering::Relaxed);
                e
            })
        })
    });
    g.finish();
}

criterion_group!(benches, dcas_uncontended, dcas_contended);
criterion_main!(benches);
