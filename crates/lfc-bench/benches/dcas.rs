//! Experiment DCAS: cost of the software double-word CAS (§3.2.2).
//!
//! The paper motivates its custom DCAS over Harris et al.'s by needing
//! fewer CASes in the uncontended case; this bench pins down the
//! uncontended latency against the unattainable lower bound of two raw
//! CASes, plus the cost of the `read` operation on a quiet word and the
//! contended two-thread case.
//!
//! Run with `cargo bench -p lfc-bench --bench dcas [-- --json]`.

use lfc_bench::harness::report;
use lfc_bench::micro;

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let ms = micro::dcas();
    if json {
        for m in &ms {
            println!("{}", m.to_json());
        }
    } else {
        report("dcas", &ms);
    }
}
