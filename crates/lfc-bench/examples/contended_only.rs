//! Repeated in-process captures of the contended 2-thread move bench.
//!
//! The full `reproduce bench` records one median per metric; this bench
//! is the suite's smallest per-op denominator and bimodal across
//! *process* runs on the 1-core container (thread placement + layout),
//! so regressions are judged on the distribution across several runs of
//! this binary (see EXPERIMENTS.md § PR 9).
fn main() {
    for _ in 0..5 {
        let r = lfc_bench::micro::move_contended();
        println!("{} median {} ns", r.name, r.median_ns);
    }
}
