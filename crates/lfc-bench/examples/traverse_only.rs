//! One capture of the traversal micro benches per process run.
//!
//! Long walks are dominated by allocation/layout luck that is fixed per
//! process on this container, so A/B comparisons interleave many runs of
//! this binary and compare medians and minima (EXPERIMENTS.md § PR 9).
fn main() {
    for r in lfc_bench::micro::traverse() {
        println!("{} {}", r.name, r.median_ns);
    }
}
