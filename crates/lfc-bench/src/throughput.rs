//! Multi-thread closed-loop throughput harness (PR 7, tentpole a).
//!
//! Every number the repo tracked before this PR was a single-thread
//! median; this module measures the thing the paper is actually about —
//! composed lock-free operations under contention. N worker threads run a
//! closed loop (next op issued as soon as the last returns) against a
//! shared structure set for a fixed duration; per-op latencies go into
//! per-thread [`Hist`]s merged at the end, so a run reports both ops/sec
//! and p50/p99/p999.
//!
//! Workloads:
//! * `ReadMostly` — 90 % `LfHashMap::get`, 10 % composed `move_keyed`
//!   between two maps;
//! * `MoveHeavy` — 100 % composed `move_keyed` shuttling keys between two
//!   maps (the CASN-commit-bound regime the group commit targets);
//! * `Mixed` — 50 % get, 20 % insert/remove, 30 % move;
//! * `StackPushPop` — plain push/pop on one hot `TreiberStack` (the
//!   elimination regime);
//! * `SkipMix` — 40 % `LfSkipMap::get`, 20 % ordered `range` scans, 20 %
//!   insert/remove, 20 % composed `move_keyed` between two skip maps
//!   (PR 9: kernel traversals + tower churn + range walks under load).
//!
//! Key choice is `Uniform` or `Zipfian` (s ≈ 0.99, YCSB-style) over a
//! configurable key space; a small space plus Zipf skew concentrates the
//! load on a few hot buckets. `adaptive` selects the PR 7 machinery (the
//! [`BatchGate`] front-end for map moves, the elimination layer for the
//! stack); baseline runs the plain composition / a no-elimination stack.
//!
//! On a host with fewer cores than threads the run is *oversubscribed* —
//! deliberately so: preempted readers exercise the PR 6 ejection ladder,
//! and each worker samples `lfc_hazard::retired_bytes()` so the run
//! records the reclamation high-water mark alongside the throughput.

use crate::hist::Hist;
use crate::json::Json;
use lfc_core::{move_keyed, BatchGate, MoveKeyedOp, MoveOutcome};
use lfc_runtime::SmallRng;
use lfc_structures::{LfHashMap, LfSkipMap, TreiberStack};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Instant;

/// What the worker threads do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TpWorkload {
    /// 90 % map reads, 10 % composed moves.
    ReadMostly,
    /// 100 % composed moves between two maps.
    MoveHeavy,
    /// 50 % reads, 20 % plain insert/remove, 30 % composed moves.
    Mixed,
    /// Plain push/pop on one hot Treiber stack.
    StackPushPop,
    /// Skip-list mix (PR 9): 40 % get, 20 % 64-key `range`, 20 % plain
    /// insert/remove, 20 % composed moves between two `LfSkipMap`s.
    SkipMix,
}

/// Key-pick distribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Skew {
    /// Uniform over the key space.
    Uniform,
    /// Zipfian, s ≈ 0.99: a handful of keys take most of the traffic.
    Zipfian,
}

/// One throughput run's configuration.
#[derive(Clone, Copy, Debug)]
pub struct TpCfg {
    /// Workload shape.
    pub workload: TpWorkload,
    /// Worker threads (may exceed the core count — that's the point).
    pub threads: usize,
    /// Key-pick skew (ignored by `StackPushPop`).
    pub skew: Skew,
    /// Wall-clock measurement window.
    pub duration_ms: u64,
    /// Keys shuttled between the two maps (ignored by `StackPushPop`).
    pub key_space: u64,
    /// `true` = PR 7 machinery (batch gate / elimination); `false` =
    /// plain compositions / no-elimination stack.
    pub adaptive: bool,
    /// RNG seed (deterministic key sequences per thread).
    pub seed: u64,
}

impl TpCfg {
    /// Canonical curve name, e.g. `move_heavy/zipf`.
    pub fn name(&self) -> String {
        let w = match self.workload {
            TpWorkload::ReadMostly => "read_mostly",
            TpWorkload::MoveHeavy => "move_heavy",
            TpWorkload::Mixed => "mixed",
            TpWorkload::StackPushPop => "stack_push_pop",
            TpWorkload::SkipMix => "skip_mix",
        };
        if self.workload == TpWorkload::StackPushPop {
            w.to_string()
        } else {
            let s = match self.skew {
                Skew::Uniform => "uniform",
                Skew::Zipfian => "zipf",
            };
            format!("{w}/{s}")
        }
    }
}

/// One throughput run's results.
#[derive(Clone, Debug)]
pub struct TpResult {
    /// `TpCfg::name()`.
    pub name: String,
    /// `"adaptive"` or `"baseline"`.
    pub mode: &'static str,
    /// Worker threads.
    pub threads: usize,
    /// Total completed operations.
    pub ops: u64,
    /// Measured wall time.
    pub elapsed_ns: u64,
    /// Latency quantiles (ns) over every op from every thread.
    pub p50_ns: u64,
    /// 99th percentile (ns).
    pub p99_ns: u64,
    /// 99.9th percentile (ns).
    pub p999_ns: u64,
    /// Fewest ops any single thread completed (a starvation canary: a
    /// lock-free harness must not let one thread finish with ~0).
    pub min_thread_ops: u64,
    /// High-water mark of `lfc_hazard::retired_bytes()` sampled during
    /// the run (PR 6 regression net under real load).
    pub retired_hwm: u64,
    /// Whether threads exceeded the cores available to the process.
    pub oversubscribed: bool,
    /// Submits the batch gate routed through the claim list during the
    /// run (0 in baseline mode / non-gated workloads).
    pub batched_ops: u64,
    /// Push/pop pairs cancelled in the elimination exchanger.
    pub elim_pairs: u64,
}

impl TpResult {
    /// Operations per wall-clock second.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / (self.elapsed_ns as f64 / 1e9)
    }

    /// The JSON block recorded in `BENCH_results.json` scaling curves.
    pub fn to_value(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::str(self.name.clone())),
            ("mode".into(), Json::str(self.mode)),
            ("threads".into(), Json::int(self.threads as u64)),
            ("ops".into(), Json::int(self.ops)),
            (
                "ops_per_sec".into(),
                Json::Num((self.ops_per_sec() * 10.0).round() / 10.0),
            ),
            ("p50_ns".into(), Json::int(self.p50_ns)),
            ("p99_ns".into(), Json::int(self.p99_ns)),
            ("p999_ns".into(), Json::int(self.p999_ns)),
            ("min_thread_ops".into(), Json::int(self.min_thread_ops)),
            ("retired_bytes_hwm".into(), Json::int(self.retired_hwm)),
            ("oversubscribed".into(), Json::Bool(self.oversubscribed)),
            ("batched_ops".into(), Json::int(self.batched_ops)),
            ("elim_pairs".into(), Json::int(self.elim_pairs)),
        ])
    }
}

/// Cores available to this process (1 on the CI PR container).
pub fn cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Zipfian sampler over ranks `0..n`: precomputed CDF + binary search.
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Build the CDF for `n` ranks with exponent `s`.
    pub fn new(n: u64, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for p in &mut cdf {
            *p /= total;
        }
        ZipfSampler { cdf }
    }

    /// Draw a rank in `0..n` (rank 0 is the hottest).
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        let r = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&r).expect("cdf has no NaNs"))
        {
            Ok(i) | Err(i) => (i as u64).min(self.cdf.len() as u64 - 1),
        }
    }
}

enum KeyPick {
    Uniform(u64),
    Zipf(ZipfSampler),
}

impl KeyPick {
    fn new(skew: Skew, n: u64) -> Self {
        match skew {
            Skew::Uniform => KeyPick::Uniform(n),
            Skew::Zipfian => KeyPick::Zipf(ZipfSampler::new(n, 0.99)),
        }
    }

    fn pick(&self, rng: &mut SmallRng) -> u64 {
        match self {
            KeyPick::Uniform(n) => rng.below(*n),
            KeyPick::Zipf(z) => z.sample(rng),
        }
    }
}

/// How often a worker samples the reclamation high-water mark.
const HWM_SAMPLE_MASK: u64 = 0x1FF; // every 512 ops

struct WorkerOut {
    hist: Hist,
    ops: u64,
}

/// Run one throughput configuration to completion.
pub fn run_throughput(cfg: &TpCfg) -> TpResult {
    let oversubscribed = cfg.threads > cores();
    let batched_before = lfc_core::batch::counters::batched_ops();
    let elim_before = lfc_structures::elim::counters::eliminated_pairs();

    let (outs, elapsed_ns, hwm) = match cfg.workload {
        TpWorkload::StackPushPop => run_stack(cfg),
        TpWorkload::SkipMix => run_skip(cfg),
        _ => run_maps(cfg),
    };

    let mut hist = Hist::new();
    let mut ops = 0u64;
    let mut min_thread_ops = u64::MAX;
    for o in &outs {
        hist.merge(&o.hist);
        ops += o.ops;
        min_thread_ops = min_thread_ops.min(o.ops);
    }
    TpResult {
        name: cfg.name(),
        mode: if cfg.adaptive { "adaptive" } else { "baseline" },
        threads: cfg.threads,
        ops,
        elapsed_ns,
        p50_ns: hist.quantile(0.50),
        p99_ns: hist.quantile(0.99),
        p999_ns: hist.quantile(0.999),
        min_thread_ops: if min_thread_ops == u64::MAX {
            0
        } else {
            min_thread_ops
        },
        retired_hwm: hwm,
        oversubscribed,
        batched_ops: lfc_core::batch::counters::batched_ops() - batched_before,
        elim_pairs: lfc_structures::elim::counters::eliminated_pairs() - elim_before,
    }
}

/// The shared measurement loop: workers run `op` until the stop flag
/// flips, recording per-op latency and sampling the reclamation HWM.
fn drive<F>(threads: usize, duration_ms: u64, per_thread: F) -> (Vec<WorkerOut>, u64, u64)
where
    F: Fn(usize, &AtomicBool, &AtomicU64) -> WorkerOut + Sync,
{
    let stop = AtomicBool::new(false);
    let hwm = AtomicU64::new(0);
    let barrier = Barrier::new(threads + 1);
    let mut outs = Vec::with_capacity(threads);
    let mut elapsed_ns = 0u64;
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let (stop, hwm, barrier, per_thread) = (&stop, &hwm, &barrier, &per_thread);
            handles.push(s.spawn(move || {
                barrier.wait();
                per_thread(t, stop, hwm)
            }));
        }
        barrier.wait();
        let t0 = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(duration_ms));
        stop.store(true, Ordering::Release);
        elapsed_ns = t0.elapsed().as_nanos() as u64;
        for h in handles {
            outs.push(h.join().expect("worker panicked"));
        }
    });
    let hwm = hwm.load(Ordering::Relaxed);
    (outs, elapsed_ns, hwm)
}

fn note_op(hist: &mut Hist, ops: &mut u64, hwm: &AtomicU64, t0: Instant) {
    hist.record(t0.elapsed().as_nanos() as u64);
    *ops += 1;
    if *ops & HWM_SAMPLE_MASK == 0 {
        hwm.fetch_max(lfc_hazard::retired_bytes() as u64, Ordering::Relaxed);
    }
}

fn run_maps(cfg: &TpCfg) -> (Vec<WorkerOut>, u64, u64) {
    let a: LfHashMap<u64, u64> = LfHashMap::new();
    let b: LfHashMap<u64, u64> = LfHashMap::new();
    for k in 0..cfg.key_space {
        a.insert(k, k);
    }
    // One gate serves both move directions (same request type either way).
    type Map = LfHashMap<u64, u64>;
    let gate: BatchGate<MoveKeyedOp<'_, u64, u64, Map, Map>> = BatchGate::new();
    let keys = KeyPick::new(cfg.skew, cfg.key_space);
    let workload = cfg.workload;
    let adaptive = cfg.adaptive;
    let seed = cfg.seed;

    drive(cfg.threads, cfg.duration_ms, |t, stop, hwm| {
        let mut rng =
            SmallRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut hist = Hist::new();
        let mut ops = 0u64;
        let do_move = |key: u64, fwd: bool| -> MoveOutcome {
            let (src, dst) = if fwd { (&a, &b) } else { (&b, &a) };
            if adaptive {
                lfc_core::batch::decode_move(gate.submit(MoveKeyedOp::new(src, key, dst)))
            } else {
                move_keyed(src, &key, dst)
            }
        };
        while !stop.load(Ordering::Acquire) {
            let key = keys.pick(&mut rng);
            let roll = rng.below(100);
            let fwd = rng.next_u64() & 1 == 0;
            let t0 = Instant::now();
            match workload {
                TpWorkload::MoveHeavy => {
                    let _ = do_move(key, fwd);
                }
                TpWorkload::ReadMostly => {
                    if roll < 90 {
                        let m = if fwd { &a } else { &b };
                        let _ = m.get(&key);
                    } else {
                        let _ = do_move(key, fwd);
                    }
                }
                TpWorkload::Mixed => {
                    if roll < 50 {
                        let m = if fwd { &a } else { &b };
                        let _ = m.get(&key);
                    } else if roll < 70 {
                        let m = if fwd { &a } else { &b };
                        if roll & 1 == 0 {
                            let _ = m.insert(key, key);
                        } else {
                            let _ = m.remove(&key);
                        }
                    } else {
                        let _ = do_move(key, fwd);
                    }
                }
                TpWorkload::StackPushPop | TpWorkload::SkipMix => {
                    unreachable!("handled by run_stack / run_skip")
                }
            }
            note_op(&mut hist, &mut ops, hwm, t0);
        }
        WorkerOut { hist, ops }
    })
}

fn run_skip(cfg: &TpCfg) -> (Vec<WorkerOut>, u64, u64) {
    let a: LfSkipMap<u64, u64> = LfSkipMap::new();
    let b: LfSkipMap<u64, u64> = LfSkipMap::new();
    for k in 0..cfg.key_space {
        a.insert(k, k);
    }
    type Skip = LfSkipMap<u64, u64>;
    let gate: BatchGate<MoveKeyedOp<'_, u64, u64, Skip, Skip>> = BatchGate::new();
    let keys = KeyPick::new(cfg.skew, cfg.key_space);
    // Range windows stay well inside the key space so every scan walks
    // real chain (empty windows would measure nothing).
    let window = (cfg.key_space / 16).max(4);
    let adaptive = cfg.adaptive;
    let seed = cfg.seed;

    drive(cfg.threads, cfg.duration_ms, |t, stop, hwm| {
        let mut rng =
            SmallRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut hist = Hist::new();
        let mut ops = 0u64;
        let do_move = |key: u64, fwd: bool| -> MoveOutcome {
            let (src, dst) = if fwd { (&a, &b) } else { (&b, &a) };
            if adaptive {
                lfc_core::batch::decode_move(gate.submit(MoveKeyedOp::new(src, key, dst)))
            } else {
                move_keyed(src, &key, dst)
            }
        };
        while !stop.load(Ordering::Acquire) {
            let key = keys.pick(&mut rng);
            let roll = rng.below(100);
            let fwd = rng.next_u64() & 1 == 0;
            let t0 = Instant::now();
            if roll < 40 {
                let m = if fwd { &a } else { &b };
                let _ = m.get(&key);
            } else if roll < 60 {
                let m = if fwd { &a } else { &b };
                let lo = key.saturating_sub(window / 2);
                let _ = m.range(lo..lo + window);
            } else if roll < 80 {
                let m = if fwd { &a } else { &b };
                if roll & 1 == 0 {
                    let _ = m.insert(key, key);
                } else {
                    let _ = m.remove(&key);
                }
            } else {
                let _ = do_move(key, fwd);
            }
            note_op(&mut hist, &mut ops, hwm, t0);
        }
        WorkerOut { hist, ops }
    })
}

fn run_stack(cfg: &TpCfg) -> (Vec<WorkerOut>, u64, u64) {
    let stack: TreiberStack<u64> = if cfg.adaptive {
        TreiberStack::new()
    } else {
        TreiberStack::without_elimination()
    };
    for v in 0..64 {
        stack.push(v);
    }
    let seed = cfg.seed;
    drive(cfg.threads, cfg.duration_ms, |t, stop, hwm| {
        let mut rng =
            SmallRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut hist = Hist::new();
        let mut ops = 0u64;
        while !stop.load(Ordering::Acquire) {
            let push = rng.next_u64() & 1 == 0;
            let t0 = Instant::now();
            if push {
                stack.push(ops);
            } else {
                let _ = stack.pop();
            }
            note_op(&mut hist, &mut ops, hwm, t0);
        }
        WorkerOut { hist, ops }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = ZipfSampler::new(100, 0.99);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0u64; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        // Rank 0 must dominate the tail decisively.
        assert!(
            counts[0] > counts[50] * 5,
            "{} vs {}",
            counts[0],
            counts[50]
        );
        assert!(counts.iter().sum::<u64>() == 20_000);
    }

    #[test]
    fn tiny_run_completes_each_workload() {
        for workload in [
            TpWorkload::ReadMostly,
            TpWorkload::MoveHeavy,
            TpWorkload::Mixed,
            TpWorkload::StackPushPop,
            TpWorkload::SkipMix,
        ] {
            for adaptive in [false, true] {
                // Retried: on an oversubscribed test runner (2 harness
                // threads + the rest of this binary's tests sharing one
                // core) a 30 ms window can starve a thread through OS
                // scheduling alone. Persistent starvation across attempts
                // is the real signal.
                let mut r = None;
                for _ in 0..3 {
                    let attempt = run_throughput(&TpCfg {
                        workload,
                        threads: 2,
                        skew: Skew::Zipfian,
                        duration_ms: 30,
                        key_space: 16,
                        adaptive,
                        seed: 42,
                    });
                    let done = attempt.ops > 0 && attempt.min_thread_ops > 0;
                    r = Some(attempt);
                    if done {
                        break;
                    }
                }
                let r = r.unwrap();
                assert!(r.ops > 0, "{} {} did nothing", r.name, r.mode);
                assert!(
                    r.min_thread_ops > 0,
                    "{} {} starved a thread on every attempt",
                    r.name,
                    r.mode
                );
                assert!(r.p50_ns <= r.p99_ns && r.p99_ns <= r.p999_ns);
            }
        }
    }
}
