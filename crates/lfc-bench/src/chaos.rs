//! The combined-adversary chaos campaign against the sharded ledger.
//!
//! Previous robustness tiers exercised one adversary at a time: the crash
//! campaign killed threads, the stall campaign parked a pinned reader, the
//! OOM tier starved allocations. Real degradation is *combined*: a stalled
//! reader pins garbage while injected allocation failures push every retry
//! budget and the kill schedule keeps orphaning half-announced operations.
//! This module arms all three **simultaneously** against the
//! [`lfc_ledger::Ledger`] service under Zipfian traffic and measures what
//! the acceptance criteria actually ask for:
//!
//! * **exact conservation at every audit sweep** — a dedicated auditor
//!   thread runs [`Ledger::quiesced_audit`] continuously, campaign-long;
//! * **availability, not liveness-by-luck** — every refusal is a counted
//!   `Shed`/`Overloaded`, worker op latency is recorded into separate
//!   histograms for `Normal`- and degraded-rung service, and the run
//!   reports the degraded-phase p99;
//! * **self-healing** — after the adversaries disarm, the governor's polls
//!   must walk the ladder back to `Normal`; the recovery window is
//!   measured from the ladder's own transition log;
//! * **bounded damage** — abandonment leaks stay within the documented
//!   per-corpse bound and the retired-bytes high-water mark stays within
//!   the stall policy's budget (plus scan slack).
//!
//! The three phases (warmup → armed → recovery) share one process, one
//! ledger, and one hazard domain: nothing is reset between them, because a
//! service that only conserves tokens after a restart is not the claim.
//!
//! # Fault schedule
//!
//! Kill sites are the crash adversary's: `dcas.announced`,
//! `dcas.published`, `kcas.announced` — initiator boundaries whose
//! abandoned operations helpers and adopters must finish. OOM sites are
//! the `try_*`-surfaced ones: `dcas.desc`, `dcas.casn` (commit
//! descriptors) and `structures.node` (account/voucher nodes). The
//! allocator-level `alloc.block` site is deliberately **not** armed: it
//! also fails infallible internal paths (e.g. skip-list node allocation),
//! which panic by contract rather than degrade — that tier is covered by
//! `tests/oom_graceful.rs` on the structures that support it.

use crate::hist::Hist;
use crate::json::Json;
use lfc_ledger::{Ledger, LedgerCfg, LedgerError, ServiceState};
use lfc_runtime::fault::{self, Schedule};
use lfc_runtime::SmallRng;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Campaign parameters.
#[derive(Clone, Copy, Debug)]
pub struct ChaosCfg {
    /// Shards (≤ `lfc_core::MAX_TARGETS` keeps notice broadcasts covering
    /// every shard).
    pub shards: usize,
    /// Worker threads. Oversubscribe the machine: the adversaries bite
    /// hardest when victims are descheduled mid-protocol.
    pub workers: usize,
    /// Armed-phase length. Warmup and recovery each add half of this.
    pub duration_ms: u64,
    /// Accounts opened before the campaign.
    pub accounts: u64,
    /// Vouchers seeded into each shard's settlement lane.
    pub vouchers_per_lane: u64,
    /// Auditor sweep cadence.
    pub audit_every_ms: u64,
    /// Zipf exponent for account selection (hot keys collide).
    pub zipf_s: f64,
    /// Base seed (worker streams derive from it).
    pub seed: u64,
}

impl ChaosCfg {
    /// Full campaign as run by `nightly-chaos` and `reproduce chaos`.
    pub fn full() -> Self {
        ChaosCfg {
            shards: 4,
            workers: (crate::throughput::cores() + 4).max(8),
            duration_ms: 4_000,
            accounts: 2_048,
            vouchers_per_lane: 32,
            audit_every_ms: 50,
            zipf_s: 1.1,
            seed: crate::base_seed(),
        }
    }

    /// Seconds-scale variant for smoke runs and CI PR gates.
    pub fn smoke() -> Self {
        ChaosCfg {
            workers: 6,
            duration_ms: 600,
            accounts: 256,
            audit_every_ms: 25,
            ..ChaosCfg::full()
        }
    }
}

/// Documented leak bound per abandonment, in allocator blocks (see
/// DESIGN.md "Fault model"): 1 never-recycled descriptor + up to 2
/// unpublished nodes.
pub const LEAK_BLOCKS_PER_ABANDON: usize = 3;
/// Snapshot slack for caches the two `outstanding()` snapshots cannot see
/// identically (live threads' magazines and descriptor pools).
pub const LEAK_SLACK_BLOCKS: usize = 96;

/// Stall policy the campaign installs: a small garbage budget so the
/// ejection ladder actually engages against the staller.
pub const CHAOS_STALL_POLICY: lfc_hazard::StallPolicy = lfc_hazard::StallPolicy {
    stall_eras: 16,
    grace_eras: 16,
    max_retired_bytes: 1 << 20,
    max_retired_count: 16 * 1024,
};

/// Ceiling asserted on the retired-bytes high-water mark: the policy
/// budget plus generous scan-latency slack (same shape as the stall
/// adversary's bound).
pub const RETIRED_HWM_BOUND: usize = 64 << 20;

/// What one campaign measured. `to_value()` renders the JSON recorded in
/// the nightly artifact.
#[derive(Clone, Debug)]
pub struct ChaosResult {
    /// Operations attempted by workers (successes + counted refusals).
    pub ops: u64,
    /// Successful operations.
    pub ok: u64,
    /// Ladder refusals observed by workers.
    pub shed: u64,
    /// Retry-budget exhaustions observed by workers.
    pub overloaded: u64,
    /// Auditor sweeps performed.
    pub audits: u64,
    /// Sweeps that balanced exactly (must equal `audits`).
    pub audits_conserved: u64,
    /// Threads the kill schedule reaped.
    pub abandoned: usize,
    /// Corpses adopted by survivors/governor.
    pub adopted: usize,
    /// Unadopted corpses at the end (must be 0).
    pub corpses_left: usize,
    /// Ejections the stall ladder performed during the campaign.
    pub ejections: usize,
    /// p99 worker op latency while the ladder stood on `Normal`, ns.
    pub p99_normal_ns: u64,
    /// p99 worker op latency while degraded (`NoResize`/`Shed`), ns.
    pub p99_degraded_ns: u64,
    /// Degraded-phase op samples (0 means the ladder never engaged).
    pub degraded_samples: u64,
    /// Retired-bytes high-water mark sampled by the governor.
    pub retired_hwm: usize,
    /// Allocator blocks outstanding beyond the pre-arm baseline after the
    /// final flush.
    pub leaked_blocks: usize,
    /// The asserted leak ceiling for this run's abandonment count.
    pub leak_bound_blocks: usize,
    /// ms from first leaving `Normal` to the final return to it.
    pub recovery_ms: Option<u64>,
    /// Rung the service ended on (must be `Normal`).
    pub final_state: ServiceState,
    /// Ladder transitions as `(at_ms, from, to)` strings for the artifact.
    pub transitions: Vec<(u64, String, String)>,
}

impl ChaosResult {
    /// Whether the run met every acceptance criterion the campaign can
    /// check in-process.
    pub fn acceptable(&self) -> bool {
        self.audits > 0
            && self.audits_conserved == self.audits
            && self.corpses_left == 0
            && self.adopted >= self.abandoned
            && self.leaked_blocks <= self.leak_bound_blocks
            && self.retired_hwm <= RETIRED_HWM_BOUND
            && self.final_state == ServiceState::Normal
    }

    /// JSON for the nightly artifact.
    pub fn to_value(&self) -> Json {
        Json::Obj(vec![
            ("ops".into(), Json::int(self.ops)),
            ("ok".into(), Json::int(self.ok)),
            ("shed".into(), Json::int(self.shed)),
            ("overloaded".into(), Json::int(self.overloaded)),
            ("audits".into(), Json::int(self.audits)),
            ("audits_conserved".into(), Json::int(self.audits_conserved)),
            ("abandoned".into(), Json::int(self.abandoned as u64)),
            ("adopted".into(), Json::int(self.adopted as u64)),
            ("corpses_left".into(), Json::int(self.corpses_left as u64)),
            ("ejections".into(), Json::int(self.ejections as u64)),
            ("p99_normal_ns".into(), Json::int(self.p99_normal_ns)),
            ("p99_degraded_ns".into(), Json::int(self.p99_degraded_ns)),
            ("degraded_samples".into(), Json::int(self.degraded_samples)),
            ("retired_hwm".into(), Json::int(self.retired_hwm as u64)),
            ("leaked_blocks".into(), Json::int(self.leaked_blocks as u64)),
            (
                "leak_bound_blocks".into(),
                Json::int(self.leak_bound_blocks as u64),
            ),
            (
                "recovery_ms".into(),
                match self.recovery_ms {
                    Some(ms) => Json::int(ms),
                    None => Json::Null,
                },
            ),
            (
                "final_state".into(),
                Json::str(self.final_state.to_string()),
            ),
            (
                "transitions".into(),
                Json::Arr(
                    self.transitions
                        .iter()
                        .map(|(at, from, to)| {
                            Json::Obj(vec![
                                ("at_ms".into(), Json::int(*at)),
                                ("from".into(), Json::str(from.clone())),
                                ("to".into(), Json::str(to.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("acceptable".into(), Json::Bool(self.acceptable())),
        ])
    }
}

fn arm_combined(seed: u64) {
    // Kills at initiator boundaries (crash-adversary primes: global
    // EveryNth counters advance only for unshielded threads).
    fault::arm_site("dcas.announced", Schedule::EveryNth(701));
    fault::arm_site("dcas.published", Schedule::EveryNth(463));
    fault::arm_site("kcas.announced", Schedule::EveryNth(557));
    // OOM on the try_-surfaced allocation paths, probabilistic so failures
    // cluster unpredictably instead of beating like a metronome.
    fault::arm_site(
        "dcas.desc",
        Schedule::Prob {
            ppm: 30_000,
            seed: seed ^ 0xD0_0D,
        },
    );
    fault::arm_site(
        "dcas.casn",
        Schedule::Prob {
            ppm: 30_000,
            seed: seed ^ 0xCA_51,
        },
    );
    fault::arm_site(
        "structures.node",
        Schedule::Prob {
            ppm: 15_000,
            seed: seed ^ 0x0DE5,
        },
    );
}

/// Run one combined-adversary campaign. Installs the quiet abandon hook
/// and the chaos stall policy; restores the default stall policy and
/// disarms every site before returning. The calling thread is shielded
/// for the duration.
pub fn run_chaos(cfg: &ChaosCfg) -> ChaosResult {
    fault::install_quiet_abandon_hook();
    fault::disarm();
    fault::shield_thread(true);
    lfc_hazard::configure_stall_policy(CHAOS_STALL_POLICY);

    // Leak baseline *before* the service exists: the campaign's leak
    // figure is measured after the ledger is dropped, so live accounts
    // never masquerade as leaks — only what abandonments truly orphaned.
    for _ in 0..4 {
        lfc_hazard::flush();
    }
    let baseline_blocks = lfc_alloc::outstanding();

    let ledger = Ledger::new(LedgerCfg {
        shards: cfg.shards,
        ..LedgerCfg::default()
    });
    for i in 0..cfg.accounts {
        ledger
            .open(1 + (i % 7))
            .expect("pre-campaign opens cannot fail");
    }
    for s in 0..cfg.shards {
        for v in 0..cfg.vouchers_per_lane {
            ledger.fund_lane(s, 1 + (v % 3)).expect("seed vouchers");
        }
    }
    let abandoned0 = fault::abandoned_total();
    let adopted0 = fault::adopted_total();
    let ejections0 = lfc_hazard::ejection_stats().0;

    let warmup = Duration::from_millis(cfg.duration_ms / 2);
    let armed = Duration::from_millis(cfg.duration_ms);
    let recovery = Duration::from_millis(cfg.duration_ms / 2);

    let stop = AtomicBool::new(false);
    let stall_on = AtomicBool::new(false);
    let ops = AtomicU64::new(0);
    let ok = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let overloaded = AtomicU64::new(0);
    let audits = AtomicU64::new(0);
    let audits_conserved = AtomicU64::new(0);
    let retired_hwm = AtomicUsize::new(0);
    let hist_normal = std::sync::Mutex::new(Hist::new());
    let hist_degraded = std::sync::Mutex::new(Hist::new());

    std::thread::scope(|sc| {
        // Workers: Zipf-skewed mixed traffic in abandonment scopes — a
        // kill unwinds the burst and the same OS thread re-enters with a
        // fresh identity.
        for w in 0..cfg.workers {
            let (ledger, stop) = (&ledger, &stop);
            let (ops, ok, shed, overloaded) = (&ops, &ok, &shed, &overloaded);
            let (hist_normal, hist_degraded) = (&hist_normal, &hist_degraded);
            let accounts = cfg.accounts;
            let shards = cfg.shards;
            let zipf_s = cfg.zipf_s;
            let seed = cfg.seed ^ (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            sc.spawn(move || {
                let zipf = crate::throughput::ZipfSampler::new(accounts, zipf_s);
                let mut rng = SmallRng::seed_from_u64(seed);
                let mut local_n = Hist::new();
                let mut local_d = Hist::new();
                while !stop.load(Ordering::Acquire) {
                    fault::abandonment_scope(|| {
                        for _ in 0..32 {
                            let id = zipf.sample(&mut rng) - 1;
                            let dice = rng.next_u64();
                            let degraded = ledger.health().state() != ServiceState::Normal;
                            let t0 = Instant::now();
                            let r: Result<(), LedgerError> = match dice % 16 {
                                0..=5 => ledger.migrate(id, (dice as usize / 16) % shards),
                                6..=8 => ledger
                                    .settle(dice as usize % shards, (dice as usize / 7) % shards)
                                    .map(|_| ()),
                                9..=10 => ledger.promote(id),
                                11..=12 => ledger.demote(id),
                                13 => ledger.balance(id).map(|_| ()),
                                14 => ledger.open(1 + dice % 5).map(|_| ()),
                                _ => ledger.close(id).map(|_| ()),
                            };
                            let dt = t0.elapsed().as_nanos() as u64;
                            if degraded {
                                local_d.record(dt);
                            } else {
                                local_n.record(dt);
                            }
                            ops.fetch_add(1, Ordering::Relaxed);
                            match r {
                                Ok(()) => {
                                    ok.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(LedgerError::Shed) => {
                                    shed.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(LedgerError::Overloaded) => {
                                    overloaded.fetch_add(1, Ordering::Relaxed);
                                }
                                // NotFound/Duplicate: closed/raced ids are
                                // normal traffic outcomes, counted in ops.
                                Err(_) => {}
                            }
                        }
                    });
                }
                hist_normal.lock().unwrap().merge(&local_n);
                hist_degraded.lock().unwrap().merge(&local_d);
            });
        }

        // Staller: parks inside an operation epoch (the stall adversary's
        // posture), letting garbage pile up behind its entry era until the
        // ejection ladder reaps the pin; then resumes with the structure
        // idiom (`repin_if_ejected`) and parks again. Shielded — the
        // staller must stall, not die.
        {
            let (stop, stall_on) = (&stop, &stall_on);
            sc.spawn(move || {
                fault::shield_thread(true);
                while !stop.load(Ordering::Acquire) {
                    if !stall_on.load(Ordering::Acquire) {
                        std::thread::sleep(Duration::from_millis(1));
                        continue;
                    }
                    let mut g = lfc_hazard::pin_op();
                    let t0 = Instant::now();
                    while stall_on.load(Ordering::Acquire)
                        && !stop.load(Ordering::Acquire)
                        && t0.elapsed() < Duration::from_millis(40)
                    {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    let _ = g.repin_if_ejected();
                }
            });
        }

        // Governor: adopt corpses, poll the ladder, sample the garbage
        // high-water mark. Runs campaign-long so recovery is *observed*,
        // not scheduled.
        {
            let (ledger, stop, retired_hwm) = (&ledger, &stop, &retired_hwm);
            sc.spawn(move || {
                fault::shield_thread(true);
                while !stop.load(Ordering::Acquire) {
                    let _ = ledger.tend();
                    let retired = lfc_hazard::retired_bytes();
                    retired_hwm.fetch_max(retired, Ordering::Relaxed);
                    if retired > CHAOS_STALL_POLICY.max_retired_bytes {
                        // Over budget: force scans so the ejection ladder
                        // (and ordinary reclamation) catch up now rather
                        // than at the next organic threshold crossing.
                        lfc_hazard::flush();
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
        }

        // Auditor: continuous exact sweeps, through every phase.
        {
            let (ledger, stop) = (&ledger, &stop);
            let (audits, audits_conserved) = (&audits, &audits_conserved);
            let every = Duration::from_millis(cfg.audit_every_ms);
            sc.spawn(move || {
                fault::shield_thread(true);
                while !stop.load(Ordering::Acquire) {
                    std::thread::sleep(every);
                    let r = ledger.quiesced_audit();
                    audits.fetch_add(1, Ordering::Relaxed);
                    if r.conserved() {
                        audits_conserved.fetch_add(1, Ordering::Relaxed);
                    } else {
                        eprintln!("chaos-violation: {r:?}");
                    }
                }
            });
        }

        // Phase 1: warmup, no adversaries.
        std::thread::sleep(warmup);
        // Phase 2: everything at once.
        arm_combined(cfg.seed);
        stall_on.store(true, Ordering::Release);
        std::thread::sleep(armed);
        // Phase 3: disarm and watch the service heal itself.
        fault::disarm();
        stall_on.store(false, Ordering::Release);
        std::thread::sleep(recovery);
        stop.store(true, Ordering::Release);
    });

    // Settle: adopt stragglers, drain the domain, restore global knobs.
    let final_report = ledger.quiesced_audit();
    audits.fetch_add(1, Ordering::Relaxed);
    if final_report.conserved() {
        audits_conserved.fetch_add(1, Ordering::Relaxed);
    }
    for _ in 0..8 {
        lfc_hazard::flush();
        std::thread::yield_now();
    }
    // Let the ladder finish healing if the recovery phase was tight.
    let heal_deadline = Instant::now() + Duration::from_secs(10);
    while ledger.health().state() != ServiceState::Normal && Instant::now() < heal_deadline {
        let _ = ledger.tend();
        lfc_hazard::flush();
        std::thread::sleep(Duration::from_millis(5));
    }
    lfc_hazard::configure_stall_policy(lfc_hazard::StallPolicy::DEFAULT);

    let abandoned = fault::abandoned_total() - abandoned0;
    let adopted = fault::adopted_total() - adopted0;
    let recovery_ms = ledger.health().recovery_ms();
    let final_state = ledger.health().state();
    let corpses_left = fault::corpse_count();
    let transitions = ledger
        .health()
        .transitions()
        .into_iter()
        .map(|t| (t.at_ms, t.from.to_string(), t.to.to_string()))
        .collect();

    // Tear the service down and measure what the campaign *actually*
    // leaked: with every account, voucher, and segment freed by the drop,
    // whatever is still outstanding beyond the pre-service baseline is
    // abandonment damage — bounded per corpse by design.
    drop(ledger);
    for _ in 0..8 {
        lfc_hazard::flush();
        std::thread::yield_now();
    }
    let leaked_blocks = lfc_alloc::outstanding().saturating_sub(baseline_blocks);
    let p99 = |h: &std::sync::Mutex<Hist>| {
        let h = h.lock().unwrap();
        if h.count() == 0 {
            0
        } else {
            h.quantile(0.99)
        }
    };
    let degraded_samples = hist_degraded.lock().unwrap().count();

    let result = ChaosResult {
        ops: ops.load(Ordering::Relaxed),
        ok: ok.load(Ordering::Relaxed),
        shed: shed.load(Ordering::Relaxed),
        overloaded: overloaded.load(Ordering::Relaxed),
        audits: audits.load(Ordering::Relaxed),
        audits_conserved: audits_conserved.load(Ordering::Relaxed),
        abandoned,
        adopted,
        corpses_left,
        ejections: lfc_hazard::ejection_stats().0 - ejections0,
        p99_normal_ns: p99(&hist_normal),
        p99_degraded_ns: p99(&hist_degraded),
        degraded_samples,
        retired_hwm: retired_hwm.load(Ordering::Relaxed),
        leaked_blocks,
        leak_bound_blocks: LEAK_BLOCKS_PER_ABANDON * abandoned + LEAK_SLACK_BLOCKS,
        recovery_ms,
        final_state,
        transitions,
    };
    fault::shield_thread(false);
    result
}
