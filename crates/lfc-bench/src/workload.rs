//! The paper's workload generator and trial runner.

use lfc_core::move_one;
use lfc_runtime::BackoffCfg;
use lfc_runtime::SmallRng;
use lfc_structures::{lock_move, LockQueue, LockStack, MsQueue, TreiberStack};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Which pair of objects the trial uses (paper: "two queues, two stacks, or
/// one queue and one stack").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pair {
    /// Two Michael–Scott queues (Figure 3).
    QueueQueue,
    /// Two Treiber stacks (Figure 4).
    StackStack,
    /// One queue, one stack (Figure 2).
    QueueStack,
}

/// Operation mix (paper: "just move operations, or just insert/remove
/// operations, or both").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mix {
    /// Only insert/remove operations.
    OpsOnly,
    /// Only composed move operations.
    MoveOnly,
    /// Half insert/remove, half moves.
    Both,
}

/// Implementation under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Impl {
    /// The move-ready lock-free objects with the DCAS-composed move.
    LockFree,
    /// Test-test-and-set-locked objects with the two-lock composed move.
    Blocking,
}

/// Contention level via local work between operations (paper §6: ≈0.1 µs
/// per operation for high contention, ≈0.5 µs for low).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Contention {
    /// ≈0.1 µs local work per operation.
    High,
    /// ≈0.5 µs local work per operation.
    Low,
}

impl Contention {
    /// Mean local work per operation in nanoseconds.
    pub fn work_ns(self) -> u64 {
        match self {
            Contention::High => 100,
            Contention::Low => 500,
        }
    }
}

/// One experiment configuration.
#[derive(Clone, Copy, Debug)]
pub struct RunCfg {
    /// Object pair.
    pub pair: Pair,
    /// Operation mix.
    pub mix: Mix,
    /// Implementation.
    pub imp: Impl,
    /// Contention level.
    pub contention: Contention,
    /// Thread count.
    pub threads: usize,
    /// Total operations, split evenly (paper: five million).
    pub total_ops: usize,
    /// Backoff (doubling) applied to failed lock acquisitions / failed
    /// CASes, or `None` for the no-backoff runs.
    pub backoff: Option<(u32, u32)>,
    /// Elements pre-loaded into each object so moves/removes find work.
    pub prefill: usize,
}

impl RunCfg {
    fn backoff_cfg(&self) -> BackoffCfg {
        match self.backoff {
            Some((lo, hi)) => BackoffCfg::exponential(lo, hi),
            None => BackoffCfg::NONE,
        }
    }
}

/// Result of one trial.
#[derive(Clone, Copy, Debug)]
pub struct TrialResult {
    /// Wall-clock time for all threads to finish their allotted operations.
    pub wall: Duration,
    /// Synchronization time: wall time minus the mean per-thread local work
    /// (the paper's reported metric).
    pub sync_time: Duration,
}

// Two long-lived instances per trial; the inline elimination array (PR 7)
// makes the stack variant large, but boxing would put a pointer hop on the
// measured hot path of every figure workload.
#[allow(clippy::large_enum_variant)]
enum Obj {
    LfQ(MsQueue<u64>),
    LfS(TreiberStack<u64>),
    LkQ(LockQueue<u64>),
    LkS(LockStack<u64>),
}

impl Obj {
    fn insert(&self, v: u64) {
        match self {
            Obj::LfQ(q) => q.enqueue(v),
            Obj::LfS(s) => s.push(v),
            Obj::LkQ(q) => q.enqueue(v),
            Obj::LkS(s) => s.push(v),
        }
    }

    fn remove(&self) -> Option<u64> {
        match self {
            Obj::LfQ(q) => q.dequeue(),
            Obj::LfS(s) => s.pop(),
            Obj::LkQ(q) => q.dequeue(),
            Obj::LkS(s) => s.pop(),
        }
    }
}

fn mv(a: &Obj, b: &Obj) -> bool {
    match (a, b) {
        (Obj::LfQ(x), Obj::LfQ(y)) => move_one(x, y) == lfc_core::MoveOutcome::Moved,
        (Obj::LfQ(x), Obj::LfS(y)) => move_one(x, y) == lfc_core::MoveOutcome::Moved,
        (Obj::LfS(x), Obj::LfQ(y)) => move_one(x, y) == lfc_core::MoveOutcome::Moved,
        (Obj::LfS(x), Obj::LfS(y)) => move_one(x, y) == lfc_core::MoveOutcome::Moved,
        (Obj::LkQ(x), Obj::LkQ(y)) => lock_move(x, y),
        (Obj::LkQ(x), Obj::LkS(y)) => lock_move(x, y),
        (Obj::LkS(x), Obj::LkQ(y)) => lock_move(x, y),
        (Obj::LkS(x), Obj::LkS(y)) => lock_move(x, y),
        _ => unreachable!("pairs never mix implementations"),
    }
}

fn build_pair(cfg: &RunCfg) -> (Obj, Obj) {
    let bo = cfg.backoff_cfg();
    match (cfg.imp, cfg.pair) {
        (Impl::LockFree, Pair::QueueQueue) => (
            Obj::LfQ(MsQueue::with_backoff(bo)),
            Obj::LfQ(MsQueue::with_backoff(bo)),
        ),
        (Impl::LockFree, Pair::StackStack) => (
            Obj::LfS(TreiberStack::with_backoff(bo)),
            Obj::LfS(TreiberStack::with_backoff(bo)),
        ),
        (Impl::LockFree, Pair::QueueStack) => (
            Obj::LfQ(MsQueue::with_backoff(bo)),
            Obj::LfS(TreiberStack::with_backoff(bo)),
        ),
        (Impl::Blocking, Pair::QueueQueue) => (
            Obj::LkQ(LockQueue::with_backoff(bo)),
            Obj::LkQ(LockQueue::with_backoff(bo)),
        ),
        (Impl::Blocking, Pair::StackStack) => (
            Obj::LkS(LockStack::with_backoff(bo)),
            Obj::LkS(LockStack::with_backoff(bo)),
        ),
        (Impl::Blocking, Pair::QueueStack) => (
            Obj::LkQ(LockQueue::with_backoff(bo)),
            Obj::LkS(LockStack::with_backoff(bo)),
        ),
    }
}

/// Local work: spin for a duration drawn from an approximately normal
/// distribution with the given mean (Irwin–Hall sum of three uniforms;
/// the paper draws its work time from a normal distribution).
#[inline]
fn local_work(rng: &mut SmallRng, mean_ns: u64) -> u64 {
    if mean_ns == 0 {
        return 0;
    }
    let lo = mean_ns / 2;
    let hi = mean_ns + mean_ns / 2;
    let sample = (rng.range_incl(lo, hi) + rng.range_incl(lo, hi) + rng.range_incl(lo, hi)) / 3;
    let start = Instant::now();
    let d = Duration::from_nanos(sample);
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
    sample
}

/// Run one trial of `cfg`, returning wall and synchronization times.
pub fn run_trial(cfg: &RunCfg, seed: u64) -> TrialResult {
    let (a, b) = build_pair(cfg);
    for i in 0..cfg.prefill as u64 {
        a.insert(i);
        b.insert(i);
    }
    let ops_per_thread = cfg.total_ops / cfg.threads.max(1);
    let barrier = Barrier::new(cfg.threads + 1);
    let mut work_ns_totals: Vec<u64> = Vec::with_capacity(cfg.threads);

    let wall = std::thread::scope(|sc| {
        let mut handles = Vec::new();
        for t in 0..cfg.threads {
            let a = &a;
            let b = &b;
            let barrier = &barrier;
            handles.push(sc.spawn(move || {
                let mut rng =
                    SmallRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                barrier.wait();
                let mut my_work = 0u64;
                for i in 0..ops_per_thread {
                    let r = rng.next_u32();
                    let do_move = match cfg.mix {
                        Mix::OpsOnly => false,
                        Mix::MoveOnly => true,
                        Mix::Both => r & 1 == 0,
                    };
                    if do_move {
                        let (src, dst) = if r & 2 == 0 { (a, b) } else { (b, a) };
                        let _ = mv(src, dst);
                    } else {
                        let obj = if r & 2 == 0 { a } else { b };
                        if r & 4 == 0 {
                            obj.insert(i as u64);
                        } else {
                            let _ = obj.remove();
                        }
                    }
                    my_work += local_work(&mut rng, cfg.contention.work_ns());
                }
                my_work
            }));
        }
        barrier.wait();
        let start = Instant::now();
        for h in handles {
            work_ns_totals.push(h.join().expect("worker panicked"));
        }
        start.elapsed()
    });

    let mean_work_ns = if work_ns_totals.is_empty() {
        0
    } else {
        work_ns_totals.iter().sum::<u64>() / work_ns_totals.len() as u64
    };
    let sync_time = wall.saturating_sub(Duration::from_nanos(mean_work_ns));
    TrialResult { wall, sync_time }
}

/// Base seed for every workload RNG in this process: `LFC_BENCH_SEED` when
/// set (any u64, decimal or 0x-hex), else the historical default. Thread
/// RNGs derive from it deterministically, so a recorded run is replayable
/// bit-for-bit by exporting the seed the emitted JSON reports.
pub fn base_seed() -> u64 {
    match std::env::var("LFC_BENCH_SEED") {
        Ok(v) => {
            parse_seed(&v).unwrap_or_else(|| panic!("LFC_BENCH_SEED must be a u64, got {v:?}"))
        }
        Err(_) => 0xC0FFEE,
    }
}

/// Parse a seed value as decimal or `0x`-prefixed hex.
fn parse_seed(v: &str) -> Option<u64> {
    let v = v.trim();
    match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => v.parse().ok(),
    }
}

/// Run all trials of a configuration; returns per-trial synchronization
/// times in milliseconds. Trial `k` uses `base_seed() ^ k`.
pub fn run_config(cfg: &RunCfg, trials: usize) -> Vec<f64> {
    let seed = base_seed();
    (0..trials)
        .map(|k| run_trial(cfg, seed ^ k as u64).sync_time.as_secs_f64() * 1e3)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(pair: Pair, mix: Mix, imp: Impl) -> RunCfg {
        RunCfg {
            pair,
            mix,
            imp,
            contention: Contention::High,
            threads: 2,
            total_ops: 4_000,
            backoff: None,
            prefill: 100,
        }
    }

    #[test]
    fn lockfree_trials_run_all_pairs_and_mixes() {
        for pair in [Pair::QueueQueue, Pair::StackStack, Pair::QueueStack] {
            for mix in [Mix::OpsOnly, Mix::MoveOnly, Mix::Both] {
                let r = run_trial(&tiny(pair, mix, Impl::LockFree), 1);
                assert!(r.wall > Duration::ZERO);
            }
        }
    }

    #[test]
    fn blocking_trials_run_all_pairs_and_mixes() {
        for pair in [Pair::QueueQueue, Pair::StackStack, Pair::QueueStack] {
            for mix in [Mix::OpsOnly, Mix::MoveOnly, Mix::Both] {
                let r = run_trial(&tiny(pair, mix, Impl::Blocking), 2);
                assert!(r.wall > Duration::ZERO);
            }
        }
    }

    #[test]
    fn backoff_config_accepted() {
        let mut cfg = tiny(Pair::QueueStack, Mix::Both, Impl::LockFree);
        cfg.backoff = Some((100, 10_000));
        let r = run_trial(&cfg, 3);
        assert!(r.wall > Duration::ZERO);
    }

    #[test]
    fn sync_time_is_bounded_by_wall() {
        let r = run_trial(&tiny(Pair::QueueQueue, Mix::Both, Impl::LockFree), 4);
        assert!(r.sync_time <= r.wall);
    }

    #[test]
    fn seed_parsing_formats() {
        // Pure parser tested directly: mutating the process environment in
        // a test would race sibling tests' base_seed() readers (setenv vs
        // getenv on other threads is UB on glibc).
        assert_eq!(parse_seed("12345"), Some(12345));
        assert_eq!(parse_seed("0xDEAD"), Some(0xDEAD));
        assert_eq!(parse_seed(" 0XBEEF "), Some(0xBEEF));
        assert_eq!(parse_seed("nope"), None);
        // No base_seed() assertion: it reads the live LFC_BENCH_SEED, which
        // a developer reproducing a recorded run legitimately has set.
    }

    #[test]
    fn run_config_returns_requested_trials() {
        let xs = run_config(&tiny(Pair::StackStack, Mix::OpsOnly, Impl::LockFree), 3);
        assert_eq!(xs.len(), 3);
    }
}
