//! A minimal, dependency-free benchmark harness.
//!
//! Methodology: a sample times a batch of `B` iterations, where `B` is
//! calibrated so one batch takes roughly [`TARGET_SAMPLE`]; the reported
//! figure is the **median** ns/op over [`SAMPLES`] batches (median, not
//! mean, so a stray scheduler preemption cannot drag the figure).

use std::time::{Duration, Instant};

/// Target wall time per sample batch.
pub const TARGET_SAMPLE: Duration = Duration::from_millis(40);
/// Samples per benchmark.
pub const SAMPLES: usize = 15;
/// Warmup time before calibration.
pub const WARMUP: Duration = Duration::from_millis(200);

/// One benchmark result.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Benchmark id, e.g. `"dcas/success_uncontended"`.
    pub name: String,
    /// Median nanoseconds per operation.
    pub median_ns: f64,
    /// Minimum over samples (closest to the true cost).
    pub min_ns: f64,
    /// Maximum over samples.
    pub max_ns: f64,
}

impl Measurement {
    /// Render as one JSON object (flat, stable keys).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"median_ns\":{:.3},\"min_ns\":{:.3},\"max_ns\":{:.3}}}",
            json_escape(&self.name),
            self.median_ns,
            self.min_ns,
            self.max_ns
        )
    }

    /// The same object as a [`crate::json::Json`] value (the emitters in
    /// `reproduce` build one tree and serialize once).
    pub fn to_value(&self) -> crate::json::Json {
        use crate::json::Json;
        let ms = |v: f64| Json::Num((v * 1000.0).round() / 1000.0);
        Json::Obj(vec![
            ("name".into(), Json::str(self.name.clone())),
            ("median_ns".into(), ms(self.median_ns)),
            ("min_ns".into(), ms(self.min_ns)),
            ("max_ns".into(), ms(self.max_ns)),
        ])
    }
}

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn summarize(name: &str, mut ns: Vec<f64>) -> Measurement {
    ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = if ns.len() % 2 == 1 {
        ns[ns.len() / 2]
    } else {
        (ns[ns.len() / 2 - 1] + ns[ns.len() / 2]) / 2.0
    };
    Measurement {
        name: name.to_string(),
        median_ns: median,
        min_ns: *ns.first().unwrap(),
        max_ns: *ns.last().unwrap(),
    }
}

/// Measure a closure that performs **one** operation per call.
pub fn bench(name: &str, mut op: impl FnMut()) -> Measurement {
    // Warmup.
    let start = Instant::now();
    while start.elapsed() < WARMUP {
        op();
    }
    // Calibrate batch size.
    let mut batch = 16u64;
    loop {
        let t = Instant::now();
        for _ in 0..batch {
            op();
        }
        let e = t.elapsed();
        if e >= TARGET_SAMPLE / 4 || batch >= 1 << 28 {
            if e < TARGET_SAMPLE / 2 {
                batch = batch.saturating_mul(2);
            }
            break;
        }
        batch *= 4;
    }
    // Sample.
    let mut ns = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t = Instant::now();
        for _ in 0..batch {
            op();
        }
        ns.push(t.elapsed().as_nanos() as f64 / batch as f64);
    }
    summarize(name, ns)
}

/// Measure with a custom timing function: `run(iters)` performs `iters`
/// operations and returns only the time that should count (for benches that
/// set up threads around the timed region).
pub fn bench_custom(name: &str, mut run: impl FnMut(u64) -> Duration) -> Measurement {
    // Calibrate.
    let mut batch = 64u64;
    loop {
        let e = run(batch);
        if e >= TARGET_SAMPLE / 4 || batch >= 1 << 24 {
            break;
        }
        batch *= 4;
    }
    let mut ns = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let e = run(batch);
        ns.push(e.as_nanos() as f64 / batch as f64);
    }
    summarize(name, ns)
}

/// Print a measurement table for `ms` to stdout.
pub fn report(group: &str, ms: &[Measurement]) {
    println!("\n== {group} ==");
    for m in ms {
        println!(
            "{:<44} {:>12.1} ns/op   (min {:.1}, max {:.1})",
            m.name, m.median_ns, m.min_ns, m.max_ns
        );
    }
}
