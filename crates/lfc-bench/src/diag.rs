//! Shared reclamation/robustness diagnostics block for captured JSON.
//!
//! Every capture the CI tracks (`reproduce bench`, `reproduce throughput`,
//! `reproduce chaos`) embeds the same post-run snapshot of the hazard
//! domain and the fault subsystem, under the same `"reclamation"` key, so
//! regressions in garbage accumulation — or an armed fault site leaking
//! into a perf capture — show up in whichever artifact is being diffed.

use crate::json::Json;

/// A post-run snapshot of the hazard domain and fault counters as one JSON
/// object. On an unfaulted run the `ejections`, `zombies`,
/// `abandoned_threads`, and every `fired` are zero; nonzero values in a
/// perf capture flag an armed site leaking in.
pub fn reclamation_json() -> Json {
    let (ejections, zombies) = lfc_hazard::ejection_stats();
    Json::Obj(vec![
        (
            "retired_count".into(),
            Json::int(lfc_hazard::retired_count() as u64),
        ),
        (
            "retired_bytes".into(),
            Json::int(lfc_hazard::retired_bytes() as u64),
        ),
        (
            "diverted".into(),
            Json::int(lfc_hazard::diverted_count() as u64),
        ),
        ("scans".into(), Json::int(lfc_hazard::scan_count() as u64)),
        ("ejections".into(), Json::int(ejections as u64)),
        ("zombies".into(), Json::int(zombies as u64)),
        // Fault/robustness diagnostics (PR 8): helper-side protocol
        // completions (organic read-helping + corpse adoptions) and the
        // per-site fault-injection counters.
        (
            "helped_completions".into(),
            Json::int(lfc_dcas::helped_completions() as u64),
        ),
        (
            "abandoned_threads".into(),
            Json::int(lfc_runtime::fault::abandoned_total() as u64),
        ),
        (
            "fault_counters".into(),
            Json::Arr(
                lfc_runtime::fault::counters()
                    .into_iter()
                    .map(|(site, checks, fired)| {
                        Json::Obj(vec![
                            ("site".into(), Json::str(site)),
                            ("checks".into(), Json::int(checks)),
                            ("fired".into(), Json::int(fired)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}
