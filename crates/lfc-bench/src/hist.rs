//! In-tree HDR-style latency histogram (no crates.io): log-linear buckets
//! with bounded relative error, constant-time record, mergeable across
//! threads.
//!
//! Layout: values below 2⁴ land in exact unit buckets; above that, each
//! power-of-two *major* bucket splits into 16 linear sub-buckets, so any
//! recorded value is attributed to a bucket whose width is at most 1/16 of
//! its magnitude — ≤ 6.25 % relative quantile error, plenty for p50/p99/
//! p999 over nanosecond op latencies.

/// Sub-bucket resolution: 2^SUB_BITS linear sub-buckets per power of two.
const SUB_BITS: u32 = 4;
const SUBS: usize = 1 << SUB_BITS;
/// Majors cover u64: values ≥ 2^63 clamp into the last bucket.
const MAJORS: usize = 64 - SUB_BITS as usize;
const BUCKETS: usize = MAJORS * SUBS;

/// A fixed-size log-linear histogram of `u64` samples (latencies in ns).
pub struct Hist {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    min: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    let top = 63 - v.leading_zeros(); // ≥ SUB_BITS
    let sub = ((v >> (top - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
    let major = (top - SUB_BITS + 1) as usize;
    (major * SUBS + sub).min(BUCKETS - 1)
}

/// Upper edge of the bucket (inclusive): the reported quantile value.
fn bucket_upper(idx: usize) -> u64 {
    let major = idx / SUBS;
    let sub = (idx % SUBS) as u64;
    if major == 0 {
        return sub;
    }
    let shift = major as u32 + SUB_BITS - 1;
    // Lower edge of the major bucket plus (sub+1) sub-widths, minus one.
    (1u64 << shift) + (sub + 1).wrapping_shl(shift - SUB_BITS) - 1
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Self {
        Hist {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Fold another histogram's samples into this one (per-thread hists →
    /// one run hist).
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q` in `[0, 1]` (e.g. `0.99` for p99), with
    /// the structure's ≤ 1/16 relative error; exact min/max at the ends.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min();
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper(idx).min(self.max).max(self.min());
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Hist::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.quantile(1.0), 15);
    }

    #[test]
    fn quantile_error_is_bounded() {
        let mut h = Hist::new();
        // 1..=100_000 uniformly: pN should be near N% of the range.
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (q, expect) in [(0.5, 50_000.0), (0.99, 99_000.0), (0.999, 99_900.0)] {
            let got = h.quantile(q) as f64;
            let rel = (got - expect).abs() / expect;
            assert!(rel <= 0.0625 + 1e-9, "q{q}: got {got}, want ~{expect}");
        }
    }

    #[test]
    fn merge_equals_union() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        let mut u = Hist::new();
        for v in 0..1000u64 {
            let x = (v * 2_654_435_761) % 1_000_003;
            if v % 2 == 0 {
                a.record(x)
            } else {
                b.record(x)
            }
            u.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), u.count());
        assert_eq!(a.min(), u.min());
        assert_eq!(a.max(), u.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), u.quantile(q));
        }
    }

    #[test]
    fn huge_values_clamp_without_panic() {
        let mut h = Hist::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.max(), u64::MAX);
        // The real assertion is "does not panic"; the top bucket must still
        // report a representative value at or above the recorded minimum.
        assert!(h.quantile(0.99) >= h.quantile(0.5));
    }
}
