//! Evaluation harness reproducing the paper's §6 experiments.
//!
//! The paper's setup: two objects (two queues, two stacks, or one of each);
//! each thread randomly performs operations from a set of either just move
//! operations, just insert/remove operations, or both; five million
//! operations distributed evenly over 1–16 threads; fifty trials; local
//! work between operations tuned for a high-contention (≈0.1 µs) or
//! low-contention (≈0.5 µs) load; reported time excludes the local work.
//!
//! [`run_config`] executes one such configuration and returns per-trial
//! synchronization times; the `reproduce` binary sweeps full figures.

#![warn(missing_docs)]

pub mod chaos;
pub mod diag;
pub mod harness;
pub mod hist;
pub mod json;
pub mod micro;
pub mod stats;
pub mod throughput;
pub mod workload;

pub use workload::{
    base_seed, run_config, run_trial, Contention, Impl, Mix, Pair, RunCfg, TrialResult,
};
