//! Regenerates the paper's evaluation figures.
//!
//! ```text
//! reproduce fig2            # queue/stack  (paper Figure 2)
//! reproduce fig3            # queue/queue  (paper Figure 3)
//! reproduce fig4            # stack/stack  (paper Figure 4)
//! reproduce all
//! reproduce fig2 --backoff  # §6–§7 "with backoff" variant
//! ```
//!
//! Options: `--ops N` (total operations, default 1,000,000), `--trials K`
//! (default 10; paper uses 5,000,000/50), `--threads 1,2,4,8,16`, `--csv`.
//!
//! Each figure has three panels (operation mixes): insert/remove only, move
//! only, and both — for lock-free vs blocking at high and low contention.
//! The printed value is the total synchronization time in milliseconds
//! (wall time minus local work), mean ± standard deviation over the trials,
//! exactly the quantity the paper plots.

use lfc_bench::stats::{mean, std_dev};
use lfc_bench::{run_config, Contention, Impl, Mix, Pair, RunCfg};

struct Options {
    figures: Vec<(&'static str, Pair)>,
    total_ops: usize,
    trials: usize,
    threads: Vec<usize>,
    backoff: bool,
    csv: bool,
}

fn parse_args() -> Options {
    let mut figures = Vec::new();
    let mut total_ops = 1_000_000;
    let mut trials = 10;
    let mut threads = vec![1, 2, 4, 8, 16];
    let mut backoff = false;
    let mut csv = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "fig2" => figures.push(("Figure 2 (queue/stack)", Pair::QueueStack)),
            "fig3" => figures.push(("Figure 3 (queue/queue)", Pair::QueueQueue)),
            "fig4" => figures.push(("Figure 4 (stack/stack)", Pair::StackStack)),
            "all" => {
                figures.push(("Figure 2 (queue/stack)", Pair::QueueStack));
                figures.push(("Figure 3 (queue/queue)", Pair::QueueQueue));
                figures.push(("Figure 4 (stack/stack)", Pair::StackStack));
            }
            "--backoff" => backoff = true,
            "--csv" => csv = true,
            "--ops" => {
                i += 1;
                total_ops = args[i].parse().expect("--ops N");
            }
            "--trials" => {
                i += 1;
                trials = args[i].parse().expect("--trials K");
            }
            "--threads" => {
                i += 1;
                threads = args[i]
                    .split(',')
                    .map(|s| s.parse().expect("--threads a,b,c"))
                    .collect();
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if figures.is_empty() {
        eprintln!("usage: reproduce <fig2|fig3|fig4|all> [--backoff] [--ops N] [--trials K] [--threads 1,2,..] [--csv]");
        std::process::exit(2);
    }
    Options {
        figures,
        total_ops,
        trials,
        threads,
        backoff,
        csv,
    }
}

fn main() {
    let opt = parse_args();
    // The paper tunes the backoff "so as to give the best performance to the
    // blocking implementation"; these constants behave well on small hosts.
    let backoff = opt.backoff.then_some((250u32, 100_000u32));

    if opt.csv {
        println!("figure,mix,impl,contention,threads,mean_ms,sd_ms");
    }

    for (name, pair) in &opt.figures {
        if !opt.csv {
            println!("\n=== {name}{} — total sync time (ms), {} ops, {} trials ===",
                if opt.backoff { ", with backoff" } else { ", no backoff" },
                opt.total_ops, opt.trials);
        }
        for (mix_name, mix) in [
            ("insert/remove only", Mix::OpsOnly),
            ("move only", Mix::MoveOnly),
            ("both", Mix::Both),
        ] {
            if !opt.csv {
                println!("\n--- {mix_name} ---");
                println!(
                    "{:>8} | {:>22} | {:>22} | {:>22} | {:>22}",
                    "threads",
                    "lock-free high",
                    "blocking high",
                    "lock-free low",
                    "blocking low"
                );
            }
            for &threads in &opt.threads {
                let mut cells = Vec::new();
                for contention in [Contention::High, Contention::Low] {
                    for imp in [Impl::LockFree, Impl::Blocking] {
                        let cfg = RunCfg {
                            pair: *pair,
                            mix,
                            imp,
                            contention,
                            threads,
                            total_ops: opt.total_ops,
                            backoff,
                            prefill: 1_000,
                        };
                        let xs = run_config(&cfg, opt.trials);
                        let (m, sd) = (mean(&xs), std_dev(&xs));
                        if opt.csv {
                            println!(
                                "{},{},{},{},{},{:.2},{:.2}",
                                name,
                                mix_name,
                                match imp {
                                    Impl::LockFree => "lockfree",
                                    Impl::Blocking => "blocking",
                                },
                                match contention {
                                    Contention::High => "high",
                                    Contention::Low => "low",
                                },
                                threads,
                                m,
                                sd
                            );
                        }
                        cells.push(format!("{m:>13.1} ±{sd:>6.1}"));
                    }
                }
                if !opt.csv {
                    // cells order: LF-high, BL-high, LF-low, BL-low
                    println!(
                        "{:>8} | {:>22} | {:>22} | {:>22} | {:>22}",
                        threads, cells[0], cells[1], cells[2], cells[3]
                    );
                }
            }
        }
    }
}
