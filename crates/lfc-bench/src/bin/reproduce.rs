//! Regenerates the paper's evaluation figures, and captures the repo's
//! standing hot-path micro-benchmarks.
//!
//! ```text
//! reproduce fig2            # queue/stack  (paper Figure 2)
//! reproduce fig3            # queue/queue  (paper Figure 3)
//! reproduce fig4            # stack/stack  (paper Figure 4)
//! reproduce all
//! reproduce fig2 --backoff  # §6–§7 "with backoff" variant
//! reproduce bench --label optimized [--out BENCH_run.json]
//! ```
//!
//! `bench` runs the hot-path micro-suite (uncontended `move_one`, contended
//! DCAS, raw-structure overhead ratios) and emits one JSON object, the
//! format recorded in `BENCH_results.json` for the perf trajectory.
//!
//! Options: `--ops N` (total operations, default 1,000,000), `--trials K`
//! (default 10; paper uses 5,000,000/50), `--threads 1,2,4,8,16`, `--csv`.
//!
//! Each figure has three panels (operation mixes): insert/remove only, move
//! only, and both — for lock-free vs blocking at high and low contention.
//! The printed value is the total synchronization time in milliseconds
//! (wall time minus local work), mean ± standard deviation over the trials,
//! exactly the quantity the paper plots.

use lfc_bench::stats::{mean, std_dev};
use lfc_bench::{run_config, Contention, Impl, Mix, Pair, RunCfg};

struct Options {
    figures: Vec<(&'static str, Pair)>,
    total_ops: usize,
    trials: usize,
    threads: Vec<usize>,
    backoff: bool,
    csv: bool,
}

fn parse_args() -> Options {
    let mut figures = Vec::new();
    let mut total_ops = 1_000_000;
    let mut trials = 10;
    let mut threads = vec![1, 2, 4, 8, 16];
    let mut backoff = false;
    let mut csv = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "fig2" => figures.push(("Figure 2 (queue/stack)", Pair::QueueStack)),
            "fig3" => figures.push(("Figure 3 (queue/queue)", Pair::QueueQueue)),
            "fig4" => figures.push(("Figure 4 (stack/stack)", Pair::StackStack)),
            "all" => {
                figures.push(("Figure 2 (queue/stack)", Pair::QueueStack));
                figures.push(("Figure 3 (queue/queue)", Pair::QueueQueue));
                figures.push(("Figure 4 (stack/stack)", Pair::StackStack));
            }
            "--backoff" => backoff = true,
            "--csv" => csv = true,
            "--ops" => {
                i += 1;
                total_ops = args[i].parse().expect("--ops N");
            }
            "--trials" => {
                i += 1;
                trials = args[i].parse().expect("--trials K");
            }
            "--threads" => {
                i += 1;
                threads = args[i]
                    .split(',')
                    .map(|s| s.parse().expect("--threads a,b,c"))
                    .collect();
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if figures.is_empty() {
        eprintln!(
            "usage: reproduce <fig2|fig3|fig4|all> [--backoff] [--ops N] [--trials K] [--threads 1,2,..] [--csv]\n       reproduce bench [--label NAME] [--out FILE.json]"
        );
        std::process::exit(2);
    }
    Options {
        figures,
        total_ops,
        trials,
        threads,
        backoff,
        csv,
    }
}

/// `reproduce bench`: run the hot-path micro-suite and emit one JSON run
/// object (the unit recorded in `BENCH_results.json`).
fn run_bench_capture(args: &[String]) {
    use lfc_bench::micro;

    let mut label = "unlabeled".to_string();
    let mut out: Option<String> = None;
    let mut i = 0;
    let value = |args: &[String], i: usize, flag: &str| -> String {
        args.get(i).cloned().unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
    };
    while i < args.len() {
        match args[i].as_str() {
            "--label" => {
                i += 1;
                label = value(args, i, "--label");
            }
            "--out" => {
                i += 1;
                out = Some(value(args, i, "--out"));
            }
            other => {
                eprintln!("unknown bench argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let seed = lfc_bench::base_seed();
    eprintln!("capturing hot-path micro-benchmarks ({label}, seed {seed:#x})...");
    let mut results = Vec::new();
    results.push(micro::move_uncontended());
    results.push(micro::move_contended());
    let overhead = micro::overhead();
    let q_ratio = micro::overhead_ratio(&overhead, "queue_enqueue_dequeue");
    let s_ratio = micro::overhead_ratio(&overhead, "stack_push_pop");
    results.extend(overhead);
    results.extend(micro::dcas());
    results.extend(micro::multi());
    results.extend(micro::traverse());
    results.extend(micro::hashmap_scaling());

    let mut json = String::new();
    json.push_str(&format!(
        "{{\n  \"label\": \"{}\",\n  \"seed\": {seed},\n  \"results\": [\n",
        lfc_bench::harness::json_escape(&label)
    ));
    for (i, m) in results.iter().enumerate() {
        json.push_str("    ");
        json.push_str(&m.to_json());
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    // Reclamation diagnostics (PR 6): a post-suite snapshot of the hazard
    // domain, so regressions in garbage accumulation (or an ejection storm
    // on an unstalled run, which should report zero) show up in the
    // tracked BENCH_results.json alongside the latency numbers.
    let (ejections, zombies) = lfc_hazard::ejection_stats();
    json.push_str(&format!(
        "  ],\n  \"overhead_ratio_queue\": {q_ratio:.4},\n  \"overhead_ratio_stack\": {s_ratio:.4},\n  \
         \"reclamation\": {{ \"retired_count\": {}, \"retired_bytes\": {}, \"diverted\": {}, \
         \"scans\": {}, \"ejections\": {ejections}, \"zombies\": {zombies} }}\n}}\n",
        lfc_hazard::retired_count(),
        lfc_hazard::retired_bytes(),
        lfc_hazard::diverted_count(),
        lfc_hazard::scan_count(),
    ));

    match out {
        Some(path) => {
            std::fs::write(&path, &json).expect("write bench output");
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
}

fn main() {
    {
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.first().map(String::as_str) == Some("bench") {
            run_bench_capture(&args[1..]);
            return;
        }
    }
    let opt = parse_args();
    // The paper tunes the backoff "so as to give the best performance to the
    // blocking implementation"; these constants behave well on small hosts.
    let backoff = opt.backoff.then_some((250u32, 100_000u32));

    if opt.csv {
        println!("figure,mix,impl,contention,threads,mean_ms,sd_ms");
    }

    for (name, pair) in &opt.figures {
        if !opt.csv {
            println!(
                "\n=== {name}{} — total sync time (ms), {} ops, {} trials ===",
                if opt.backoff {
                    ", with backoff"
                } else {
                    ", no backoff"
                },
                opt.total_ops,
                opt.trials
            );
        }
        for (mix_name, mix) in [
            ("insert/remove only", Mix::OpsOnly),
            ("move only", Mix::MoveOnly),
            ("both", Mix::Both),
        ] {
            if !opt.csv {
                println!("\n--- {mix_name} ---");
                println!(
                    "{:>8} | {:>22} | {:>22} | {:>22} | {:>22}",
                    "threads", "lock-free high", "blocking high", "lock-free low", "blocking low"
                );
            }
            for &threads in &opt.threads {
                let mut cells = Vec::new();
                for contention in [Contention::High, Contention::Low] {
                    for imp in [Impl::LockFree, Impl::Blocking] {
                        let cfg = RunCfg {
                            pair: *pair,
                            mix,
                            imp,
                            contention,
                            threads,
                            total_ops: opt.total_ops,
                            backoff,
                            prefill: 1_000,
                        };
                        let xs = run_config(&cfg, opt.trials);
                        let (m, sd) = (mean(&xs), std_dev(&xs));
                        if opt.csv {
                            println!(
                                "{},{},{},{},{},{:.2},{:.2}",
                                name,
                                mix_name,
                                match imp {
                                    Impl::LockFree => "lockfree",
                                    Impl::Blocking => "blocking",
                                },
                                match contention {
                                    Contention::High => "high",
                                    Contention::Low => "low",
                                },
                                threads,
                                m,
                                sd
                            );
                        }
                        cells.push(format!("{m:>13.1} ±{sd:>6.1}"));
                    }
                }
                if !opt.csv {
                    // cells order: LF-high, BL-high, LF-low, BL-low
                    println!(
                        "{:>8} | {:>22} | {:>22} | {:>22} | {:>22}",
                        threads, cells[0], cells[1], cells[2], cells[3]
                    );
                }
            }
        }
    }
}
