//! Regenerates the paper's evaluation figures, and captures the repo's
//! standing hot-path micro-benchmarks.
//!
//! ```text
//! reproduce fig2            # queue/stack  (paper Figure 2)
//! reproduce fig3            # queue/queue  (paper Figure 3)
//! reproduce fig4            # stack/stack  (paper Figure 4)
//! reproduce all
//! reproduce fig2 --backoff  # §6–§7 "with backoff" variant
//! reproduce bench --label optimized [--out BENCH_run.json]
//! reproduce throughput --label pr7 [--threads 1,2,4,8] [--duration-ms 300]
//! reproduce chaos --label nightly [--smoke] [--duration-ms N] [--out FILE.json]
//! ```
//!
//! `bench` runs the hot-path micro-suite (uncontended `move_one`, contended
//! DCAS, raw-structure overhead ratios) and emits one JSON object, the
//! format recorded in `BENCH_results.json` for the perf trajectory.
//!
//! `throughput` runs the PR 7 multi-thread closed-loop harness: each
//! workload × mode (baseline/adaptive) at each thread count, emitting
//! scaling curves (ops/sec + p50/p99/p999 + reclamation high-water) as one
//! JSON object. With no `--threads`, a host with ≥ 4 cores sweeps
//! 1/2/4/8 and a small CI container falls back to a 2-thread
//! oversubscribed smoke run (`--smoke` forces the latter).
//!
//! Options: `--ops N` (total operations, default 1,000,000), `--trials K`
//! (default 10; paper uses 5,000,000/50), `--threads 1,2,4,8,16`, `--csv`.
//!
//! Each figure has three panels (operation mixes): insert/remove only, move
//! only, and both — for lock-free vs blocking at high and low contention.
//! The printed value is the total synchronization time in milliseconds
//! (wall time minus local work), mean ± standard deviation over the trials,
//! exactly the quantity the paper plots.

use lfc_bench::json::Json;
use lfc_bench::stats::{mean, std_dev};
use lfc_bench::throughput::{cores, run_throughput, Skew, TpCfg, TpWorkload};
use lfc_bench::{run_config, Contention, Impl, Mix, Pair, RunCfg};

struct Options {
    figures: Vec<(&'static str, Pair)>,
    total_ops: usize,
    trials: usize,
    threads: Vec<usize>,
    backoff: bool,
    csv: bool,
}

fn parse_args() -> Options {
    let mut figures = Vec::new();
    let mut total_ops = 1_000_000;
    let mut trials = 10;
    let mut threads = vec![1, 2, 4, 8, 16];
    let mut backoff = false;
    let mut csv = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "fig2" => figures.push(("Figure 2 (queue/stack)", Pair::QueueStack)),
            "fig3" => figures.push(("Figure 3 (queue/queue)", Pair::QueueQueue)),
            "fig4" => figures.push(("Figure 4 (stack/stack)", Pair::StackStack)),
            "all" => {
                figures.push(("Figure 2 (queue/stack)", Pair::QueueStack));
                figures.push(("Figure 3 (queue/queue)", Pair::QueueQueue));
                figures.push(("Figure 4 (stack/stack)", Pair::StackStack));
            }
            "--backoff" => backoff = true,
            "--csv" => csv = true,
            "--ops" => {
                i += 1;
                total_ops = args[i].parse().expect("--ops N");
            }
            "--trials" => {
                i += 1;
                trials = args[i].parse().expect("--trials K");
            }
            "--threads" => {
                i += 1;
                threads = args[i]
                    .split(',')
                    .map(|s| s.parse().expect("--threads a,b,c"))
                    .collect();
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if figures.is_empty() {
        eprintln!(
            "usage: reproduce <fig2|fig3|fig4|all> [--backoff] [--ops N] [--trials K] [--threads 1,2,..] [--csv]\n       reproduce bench [--label NAME] [--out FILE.json]\n       reproduce throughput [--label NAME] [--threads 1,2,4,8] [--duration-ms N] [--key-space N] [--smoke] [--out FILE.json]"
        );
        std::process::exit(2);
    }
    Options {
        figures,
        total_ops,
        trials,
        threads,
        backoff,
        csv,
    }
}

/// `reproduce bench`: run the hot-path micro-suite and emit one JSON run
/// object (the unit recorded in `BENCH_results.json`).
fn run_bench_capture(args: &[String]) {
    use lfc_bench::micro;

    let mut label = "unlabeled".to_string();
    let mut out: Option<String> = None;
    let mut i = 0;
    let value = |args: &[String], i: usize, flag: &str| -> String {
        args.get(i).cloned().unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
    };
    while i < args.len() {
        match args[i].as_str() {
            "--label" => {
                i += 1;
                label = value(args, i, "--label");
            }
            "--out" => {
                i += 1;
                out = Some(value(args, i, "--out"));
            }
            other => {
                eprintln!("unknown bench argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let seed = lfc_bench::base_seed();
    eprintln!("capturing hot-path micro-benchmarks ({label}, seed {seed:#x})...");
    let mut results = Vec::new();
    results.push(micro::move_uncontended());
    results.push(micro::move_contended());
    let overhead = micro::overhead();
    let q_ratio = micro::overhead_ratio(&overhead, "queue_enqueue_dequeue");
    let s_ratio = micro::overhead_ratio(&overhead, "stack_push_pop");
    results.extend(overhead);
    results.extend(micro::dcas());
    results.extend(micro::multi());
    results.extend(micro::traverse());
    results.extend(micro::hashmap_scaling());
    results.extend(micro::skiplist());

    // Reclamation diagnostics (PR 6): a post-suite snapshot of the hazard
    // domain, so regressions in garbage accumulation (or an ejection storm
    // on an unstalled run, which should report zero) show up in the
    // tracked BENCH_results.json alongside the latency numbers.
    let ratio = |r: f64| Json::Num((r * 10_000.0).round() / 10_000.0);
    let doc = Json::Obj(vec![
        ("label".into(), Json::str(label)),
        ("seed".into(), Json::int(seed)),
        (
            "results".into(),
            Json::Arr(results.iter().map(|m| m.to_value()).collect()),
        ),
        ("overhead_ratio_queue".into(), ratio(q_ratio)),
        ("overhead_ratio_stack".into(), ratio(s_ratio)),
        ("reclamation".into(), lfc_bench::diag::reclamation_json()),
    ]);
    emit(&doc, out);
}

/// `reproduce chaos`: run the combined-adversary campaign against the
/// sharded ledger (kill + stall + OOM armed simultaneously under Zipfian
/// traffic, continuous conservation audits) and emit one JSON object —
/// the artifact the `nightly-chaos` CI job archives.
fn run_chaos_capture(args: &[String]) {
    use lfc_bench::chaos::{run_chaos, ChaosCfg};

    let mut label = "unlabeled".to_string();
    let mut out: Option<String> = None;
    let mut cfg = ChaosCfg::full();
    let mut i = 0;
    let value = |args: &[String], i: usize, flag: &str| -> String {
        args.get(i).cloned().unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
    };
    while i < args.len() {
        match args[i].as_str() {
            "--label" => {
                i += 1;
                label = value(args, i, "--label");
            }
            "--out" => {
                i += 1;
                out = Some(value(args, i, "--out"));
            }
            "--smoke" => cfg = ChaosCfg::smoke(),
            "--duration-ms" => {
                i += 1;
                cfg.duration_ms = value(args, i, "--duration-ms")
                    .parse()
                    .expect("--duration-ms N");
            }
            "--workers" => {
                i += 1;
                cfg.workers = value(args, i, "--workers").parse().expect("--workers N");
            }
            other => {
                eprintln!("unknown chaos argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    eprintln!(
        "chaos campaign ({label}, seed {:#x}): {} workers / {} shards, {} ms armed, audits every {} ms...",
        cfg.seed, cfg.workers, cfg.shards, cfg.duration_ms, cfg.audit_every_ms
    );
    let r = run_chaos(&cfg);
    eprintln!(
        "chaos-summary: ops={} ok={} shed={} overloaded={} audits={}/{} abandoned={} adopted={} \
         ejections={} p99_normal={}ns p99_degraded={}ns retired_hwm={} leaked={}<= {} recovery={:?}ms final={} acceptable={}",
        r.ops,
        r.ok,
        r.shed,
        r.overloaded,
        r.audits_conserved,
        r.audits,
        r.abandoned,
        r.adopted,
        r.ejections,
        r.p99_normal_ns,
        r.p99_degraded_ns,
        r.retired_hwm,
        r.leaked_blocks,
        r.leak_bound_blocks,
        r.recovery_ms,
        r.final_state,
        r.acceptable()
    );
    let doc = Json::Obj(vec![
        ("label".into(), Json::str(label)),
        ("seed".into(), Json::int(cfg.seed)),
        ("workers".into(), Json::int(cfg.workers as u64)),
        ("shards".into(), Json::int(cfg.shards as u64)),
        ("duration_ms".into(), Json::int(cfg.duration_ms)),
        ("campaign".into(), r.to_value()),
        ("reclamation".into(), lfc_bench::diag::reclamation_json()),
    ]);
    emit(&doc, out);
    if !r.acceptable() {
        eprintln!("chaos campaign FAILED its acceptance criteria");
        std::process::exit(1);
    }
}

/// Write the document to `--out` or stdout.
fn emit(doc: &Json, out: Option<String>) {
    let text = doc.to_pretty();
    match out {
        Some(path) => {
            std::fs::write(&path, &text).expect("write output");
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }
}

/// `reproduce throughput`: run the multi-thread closed-loop harness and
/// emit one scaling-curve JSON object.
fn run_throughput_capture(args: &[String]) {
    let mut label = "unlabeled".to_string();
    let mut out: Option<String> = None;
    let mut threads: Option<Vec<usize>> = None;
    let mut duration_ms = 300u64;
    let mut key_space = 64u64;
    let mut smoke = false;
    let value = |args: &[String], i: usize, flag: &str| -> String {
        args.get(i).cloned().unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--label" => {
                i += 1;
                label = value(args, i, "--label");
            }
            "--out" => {
                i += 1;
                out = Some(value(args, i, "--out"));
            }
            "--threads" => {
                i += 1;
                threads = Some(
                    value(args, i, "--threads")
                        .split(',')
                        .map(|s| s.parse().expect("--threads a,b,c"))
                        .collect(),
                );
            }
            "--duration-ms" => {
                i += 1;
                duration_ms = value(args, i, "--duration-ms")
                    .parse()
                    .expect("--duration-ms N");
            }
            "--key-space" => {
                i += 1;
                key_space = value(args, i, "--key-space")
                    .parse()
                    .expect("--key-space N");
            }
            "--smoke" => smoke = true,
            other => {
                eprintln!("unknown throughput argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    // Thread-count floor: a 1-core PR container cannot produce a credible
    // scaling curve, so without an explicit sweep it runs one 2-thread
    // oversubscribed smoke configuration instead.
    let threads = match threads {
        Some(t) => t,
        None if smoke || cores() < 4 => vec![2],
        None => vec![1, 2, 4, 8],
    };
    if smoke {
        duration_ms = duration_ms.min(150);
    }

    let seed = lfc_bench::base_seed();
    eprintln!(
        "throughput sweep ({label}, seed {seed:#x}, {} core(s), threads {threads:?}, {duration_ms} ms/run)...",
        cores()
    );
    let workloads = [
        (TpWorkload::MoveHeavy, Skew::Zipfian),
        (TpWorkload::ReadMostly, Skew::Zipfian),
        (TpWorkload::Mixed, Skew::Zipfian),
        (TpWorkload::MoveHeavy, Skew::Uniform),
        (TpWorkload::StackPushPop, Skew::Uniform),
        (TpWorkload::SkipMix, Skew::Zipfian),
    ];
    // Interleave baseline/adaptive trials and keep each mode's median-
    // throughput trial: back-to-back single runs on a shared box otherwise
    // hand whichever mode runs second a warmed allocator and a quieter
    // scheduler.
    let trials = if smoke { 1 } else { 3 };
    let mut curves = Vec::new();
    for &n in &threads {
        for (workload, skew) in workloads {
            let mut runs: [Vec<_>; 2] = [Vec::new(), Vec::new()];
            for _ in 0..trials {
                for adaptive in [false, true] {
                    runs[adaptive as usize].push(run_throughput(&TpCfg {
                        workload,
                        threads: n,
                        skew,
                        duration_ms,
                        key_space,
                        adaptive,
                        seed,
                    }));
                }
            }
            for per_mode in runs {
                let mut per_mode = per_mode;
                per_mode.sort_by_key(|r| r.ops);
                let r = per_mode.swap_remove(per_mode.len() / 2);
                eprintln!(
                    "  {:<22} {:<8} t={n}: {:>10.0} ops/s  p50={} p99={} p999={} retired_hwm={} batched={} elim={}",
                    r.name,
                    r.mode,
                    r.ops_per_sec(),
                    r.p50_ns,
                    r.p99_ns,
                    r.p999_ns,
                    r.retired_hwm,
                    r.batched_ops,
                    r.elim_pairs
                );
                curves.push(r.to_value());
            }
        }
    }
    let doc = Json::Obj(vec![
        ("label".into(), Json::str(label)),
        ("seed".into(), Json::int(seed)),
        ("cores".into(), Json::int(cores() as u64)),
        (
            "threads".into(),
            Json::Arr(threads.iter().map(|&t| Json::int(t as u64)).collect()),
        ),
        ("duration_ms".into(), Json::int(duration_ms)),
        ("curves".into(), Json::Arr(curves)),
        // Same post-run snapshot `reproduce bench` embeds: a throughput
        // capture with nonzero ejections/abandonments is not a clean
        // perf number, and the tracked JSON should say so itself.
        ("reclamation".into(), lfc_bench::diag::reclamation_json()),
    ]);
    emit(&doc, out);
}

fn main() {
    {
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.first().map(String::as_str) == Some("bench") {
            run_bench_capture(&args[1..]);
            return;
        }
        if args.first().map(String::as_str) == Some("throughput") {
            run_throughput_capture(&args[1..]);
            return;
        }
        if args.first().map(String::as_str) == Some("chaos") {
            run_chaos_capture(&args[1..]);
            return;
        }
    }
    let opt = parse_args();
    // The paper tunes the backoff "so as to give the best performance to the
    // blocking implementation"; these constants behave well on small hosts.
    let backoff = opt.backoff.then_some((250u32, 100_000u32));

    if opt.csv {
        println!("figure,mix,impl,contention,threads,mean_ms,sd_ms");
    }

    for (name, pair) in &opt.figures {
        if !opt.csv {
            println!(
                "\n=== {name}{} — total sync time (ms), {} ops, {} trials ===",
                if opt.backoff {
                    ", with backoff"
                } else {
                    ", no backoff"
                },
                opt.total_ops,
                opt.trials
            );
        }
        for (mix_name, mix) in [
            ("insert/remove only", Mix::OpsOnly),
            ("move only", Mix::MoveOnly),
            ("both", Mix::Both),
        ] {
            if !opt.csv {
                println!("\n--- {mix_name} ---");
                println!(
                    "{:>8} | {:>22} | {:>22} | {:>22} | {:>22}",
                    "threads", "lock-free high", "blocking high", "lock-free low", "blocking low"
                );
            }
            for &threads in &opt.threads {
                let mut cells = Vec::new();
                for contention in [Contention::High, Contention::Low] {
                    for imp in [Impl::LockFree, Impl::Blocking] {
                        let cfg = RunCfg {
                            pair: *pair,
                            mix,
                            imp,
                            contention,
                            threads,
                            total_ops: opt.total_ops,
                            backoff,
                            prefill: 1_000,
                        };
                        let xs = run_config(&cfg, opt.trials);
                        let (m, sd) = (mean(&xs), std_dev(&xs));
                        if opt.csv {
                            println!(
                                "{},{},{},{},{},{:.2},{:.2}",
                                name,
                                mix_name,
                                match imp {
                                    Impl::LockFree => "lockfree",
                                    Impl::Blocking => "blocking",
                                },
                                match contention {
                                    Contention::High => "high",
                                    Contention::Low => "low",
                                },
                                threads,
                                m,
                                sd
                            );
                        }
                        cells.push(format!("{m:>13.1} ±{sd:>6.1}"));
                    }
                }
                if !opt.csv {
                    // cells order: LF-high, BL-high, LF-low, BL-low
                    println!(
                        "{:>8} | {:>22} | {:>22} | {:>22} | {:>22}",
                        threads, cells[0], cells[1], cells[2], cells[3]
                    );
                }
            }
        }
    }
}
