//! One tiny JSON tree shared by every bench emitter (no crates.io).
//!
//! Before PR 7, `reproduce bench` hand-concatenated its JSON with
//! `format!`, and the throughput harness would have grown a second copy —
//! schema drift waiting to happen. Both now build a [`Json`] value and
//! serialize through this module; the parser exists so a round-trip test
//! can pin the emitted bytes to a real JSON grammar.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order (emitted files are
/// diffed by humans and git).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; integers ≤ 2⁵³ survive the f64 round-trip unchanged.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (ordered key/value pairs).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Integer helper (`Json::int(3)` reads better than `Num(3.0)`).
    pub fn int(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// String helper.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Look up a key in an object (`None` elsewhere).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(kvs) => kvs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Serialize with two-space indentation and a trailing newline — the
    /// layout `BENCH_results.json` blocks use.
    pub fn to_pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, 0);
        s.push('\n');
        s
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(kvs) => {
                if kvs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in kvs.iter().enumerate() {
                    indent(out, depth + 1);
                    Json::Str(k.clone()).write(out, depth + 1);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                    out.push_str(if i + 1 < kvs.len() { ",\n" } else { "\n" });
                }
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (strict enough for round-trip tests; rejects
    /// trailing garbage).
    pub fn parse(s: &str) -> Result<Json, String> {
        let b = s.as_bytes();
        let mut pos = 0;
        let v = parse_value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing bytes at {pos}"));
        }
        Ok(v)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\n' | b'\t' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end".into()),
        Some(b'n') => lit(b, pos, "null", Json::Null),
        Some(b't') => lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut kvs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(kvs));
            }
            loop {
                skip_ws(b, pos);
                let k = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let v = parse_value(b, pos)?;
                kvs.push((k, v));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(kvs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn lit(b: &[u8], pos: &mut usize, word: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(v)
    } else {
        Err(format!("bad literal at {}", *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut s = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(s);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b'r') => s.push('\r'),
                    Some(b'u') => {
                        let hex = std::str::from_utf8(&b[*pos + 1..*pos + 5])
                            .map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        s.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at {}", *pos)),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Consume one UTF-8 scalar (the input is a &str, so byte
                // boundaries are valid).
                let start = *pos;
                let len = match c {
                    _ if c < 0x80 => 1,
                    _ if c >= 0xF0 => 4,
                    _ if c >= 0xE0 => 3,
                    _ => 2,
                };
                s.push_str(std::str::from_utf8(&b[start..start + len]).unwrap());
                *pos += len;
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_bench_shaped_document() {
        let doc = Json::Obj(vec![
            ("label".into(), Json::str("pr7-adaptive")),
            ("seed".into(), Json::int(0xC0FFEE)),
            (
                "curves".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("name".into(), Json::str("move_heavy \"zipf\"")),
                    ("threads".into(), Json::int(4)),
                    ("ops_per_sec".into(), Json::Num(123456.78)),
                    ("oversubscribed".into(), Json::Bool(true)),
                    ("note".into(), Json::Null),
                ])]),
            ),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        let text = doc.to_pretty();
        let back = Json::parse(&text).expect("parse own output");
        assert_eq!(back, doc);
    }

    #[test]
    fn integers_emit_without_decimal_point() {
        assert_eq!(Json::int(42).to_pretty(), "42\n");
        assert_eq!(Json::Num(1.5).to_pretty(), "1.5\n");
    }

    #[test]
    fn escapes_round_trip() {
        let s = Json::Str("a\"b\\c\nd\te—ü".into());
        assert_eq!(Json::parse(&s.to_pretty()).unwrap(), s);
    }

    #[test]
    fn get_finds_keys() {
        let doc = Json::Obj(vec![("x".into(), Json::int(1))]);
        assert_eq!(doc.get("x"), Some(&Json::Num(1.0)));
        assert_eq!(doc.get("y"), None);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Json::parse("{} x").is_err());
    }
}
