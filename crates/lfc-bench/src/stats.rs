//! Tiny statistics helpers for the harness output.

/// Mean of `xs` (0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (0 for n < 2).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Median (0 for empty).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn std_dev_basic() {
        assert_eq!(std_dev(&[5.0]), 0.0);
        let sd = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((sd - 2.138).abs() < 0.01);
    }

    #[test]
    fn median_basic() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }
}
