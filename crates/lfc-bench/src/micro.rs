//! The repo's standing micro-benchmarks: hot-path latencies whose history
//! is tracked in `BENCH_results.json` (see the `reproduce bench`
//! subcommand). Shared by the `overhead` and `dcas` bench targets so the
//! standalone benches and the JSON capture measure exactly the same thing.

use crate::harness::{bench, bench_custom, Measurement};
use lfc_core::{move_one, move_to_all, swap, MoveOutcome, SwapOutcome};
use lfc_dcas::{DAtomic, DcasResult, DescHandle};
use lfc_hazard::pin;
use lfc_structures::{
    LfHashMap, LfSkipMap, MsQueue, OrderedSet, PlainMsQueue, PlainTreiberStack, TreiberStack,
};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};

/// Experiment OVH: move-ready structures vs. textbook `plain` versions with
/// identical memory management (the paper's "operations keep their
/// performance behavior" claim). Returns the four roundtrip measurements;
/// derive the ratios with [`overhead_ratio`].
pub fn overhead() -> Vec<Measurement> {
    let mut out = Vec::new();

    let plain: PlainMsQueue<u64> = PlainMsQueue::new();
    out.push(bench("queue_enqueue_dequeue/plain", || {
        plain.enqueue(black_box(1));
        black_box(plain.dequeue());
    }));
    let ready: MsQueue<u64> = MsQueue::new();
    out.push(bench("queue_enqueue_dequeue/move_ready", || {
        ready.enqueue(black_box(1));
        black_box(ready.dequeue());
    }));

    let plain: PlainTreiberStack<u64> = PlainTreiberStack::new();
    out.push(bench("stack_push_pop/plain", || {
        plain.push(black_box(1));
        black_box(plain.pop());
    }));
    let ready: TreiberStack<u64> = TreiberStack::new();
    out.push(bench("stack_push_pop/move_ready", || {
        ready.push(black_box(1));
        black_box(ready.pop());
    }));

    out
}

/// Overhead ratio (move-ready / plain) for a structure prefix in `ms`.
pub fn overhead_ratio(ms: &[Measurement], prefix: &str) -> f64 {
    let get = |suffix: &str| {
        ms.iter()
            .find(|m| m.name == format!("{prefix}/{suffix}"))
            .map(|m| m.median_ns)
            .unwrap_or(f64::NAN)
    };
    get("move_ready") / get("plain")
}

/// Experiment DCAS: software-DCAS latency against the two-raw-CAS lower
/// bound, plus the quiet-word `read` cost.
pub fn dcas() -> Vec<Measurement> {
    let mut out = Vec::new();

    {
        let guard = pin();
        let a = DAtomic::new(0);
        let w = DAtomic::new(0);
        let mut v = 0usize;
        out.push(bench("dcas/success_uncontended", || {
            let mut h = DescHandle::new();
            h.set_first(&a, v, v + 8, 0);
            h.set_second(&w, v, v + 8, 0);
            let (r, _) = h.commit(&guard);
            assert_eq!(r, DcasResult::Success);
            v += 8;
            black_box(v);
        }));
    }

    {
        let a = DAtomic::new(0);
        let w = DAtomic::new(0);
        let mut v = 0usize;
        out.push(bench("dcas/two_raw_cas_lower_bound", || {
            assert!(a.cas_word(v, v + 8));
            assert!(w.cas_word(v, v + 8));
            v += 8;
            black_box(v);
        }));
    }

    {
        let guard = pin();
        let a = DAtomic::new(0);
        let w = DAtomic::new(0);
        out.push(bench("dcas/first_failed", || {
            let mut h = DescHandle::new();
            h.set_first(&a, 0xDEAD0, 0xDEAD8, 0); // never matches
            h.set_second(&w, 0, 8, 0);
            let (r, _) = h.commit(&guard);
            assert_eq!(r, DcasResult::FirstFailed);
        }));
    }

    {
        let guard = pin();
        let a = DAtomic::new(0x1000);
        out.push(bench("dcas/read_quiet_word", || {
            black_box(a.read(&guard));
        }));
        out.push(bench("dcas/plain_load_lower_bound", || {
            black_box(a.load_word());
        }));
    }

    out.push(dcas_contended());
    out
}

/// Two threads hammering the same word pair; measures successful DCASes on
/// the measuring thread.
pub fn dcas_contended() -> Measurement {
    bench_custom("dcas/contended_2thr_shared_pair", |iters| {
        let a = DAtomic::new(0);
        let w = DAtomic::new(0);
        let stop = AtomicBool::new(false);
        std::thread::scope(|sc| {
            let (ar, wr, stopr) = (&a, &w, &stop);
            sc.spawn(move || {
                let guard = pin();
                while !stopr.load(Ordering::Relaxed) {
                    let o1 = ar.read(&guard);
                    let o2 = wr.read(&guard);
                    let mut h = DescHandle::new();
                    h.set_first(ar, o1, o1 + 8, 0);
                    h.set_second(wr, o2, o2 + 8, 0);
                    let _ = h.commit(&guard);
                }
            });
            let guard = pin();
            let start = std::time::Instant::now();
            let mut done = 0;
            while done < iters {
                let o1 = a.read(&guard);
                let o2 = w.read(&guard);
                let mut h = DescHandle::new();
                h.set_first(&a, o1, o1 + 8, 0);
                h.set_second(&w, o2, o2 + 8, 0);
                if let (DcasResult::Success, _) = h.commit(&guard) {
                    done += 1;
                }
            }
            let e = start.elapsed();
            stop.store(true, Ordering::Relaxed);
            e
        })
    })
}

/// Uncontended composed move: the headline latency this repo tracks. A
/// single-element queue↔queue ping-pong, so every `move_one` finds work.
pub fn move_uncontended() -> Measurement {
    let src: MsQueue<u64> = MsQueue::new();
    let dst: MsQueue<u64> = MsQueue::new();
    src.enqueue(1);
    bench("move/uncontended_queue_queue", || {
        assert_eq!(move_one(&src, &dst), MoveOutcome::Moved);
        assert_eq!(move_one(&dst, &src), MoveOutcome::Moved);
    })
}

/// Experiment MOVEN (tracked since PR 2): the unified engine's k-entry
/// commit — `move_to_all` latency as the fan-out grows (each extra target
/// adds one entry) plus the four-entry `swap`. One target rides the K=2
/// (DCAS) dispatch; larger fan-outs and the swap ride CASN.
pub fn multi() -> Vec<Measurement> {
    let mut out = Vec::new();
    for n in 1..=5usize {
        let src: MsQueue<u64> = MsQueue::new();
        let dsts: Vec<MsQueue<u64>> = (0..n).map(|_| MsQueue::new()).collect();
        let refs: Vec<&MsQueue<u64>> = dsts.iter().collect();
        src.enqueue(1);
        out.push(bench(&format!("move_to_all/targets_{n}"), || {
            let r = move_to_all(&src, &refs);
            assert_eq!(r, MoveOutcome::Moved);
            // Drain the broadcast clones and return the element so the
            // next iteration starts from the same state.
            for (i, d) in dsts.iter().enumerate() {
                let v = d.dequeue().unwrap();
                if i == 0 {
                    src.enqueue(v);
                }
            }
            black_box(r);
        }));
    }
    {
        let a: MsQueue<u64> = MsQueue::new();
        let b: MsQueue<u64> = MsQueue::new();
        a.enqueue(1);
        b.enqueue(2);
        out.push(bench("swap/uncontended_queue_queue", || {
            assert_eq!(swap(&a, &b), SwapOutcome::Swapped);
        }));
    }
    out
}

/// Experiment TRAV (tracked since PR 3): traversal-bound read paths — the
/// locate cost that dominates `find`-heavy workloads. Each iteration runs
/// one hit *and* one miss lookup against keys at the far end of the
/// traversal, so the whole chain is walked both times and the per-node
/// protection cost (hazard publication vs. epoch entry) is what is being
/// measured.
pub fn traverse() -> Vec<Measurement> {
    let mut out = Vec::new();

    for n in [64usize, 1024] {
        let s: OrderedSet<u64, u64> = OrderedSet::new();
        // Even keys resident; the largest even key is a full-length hit and
        // the adjacent odd key a full-length miss.
        for k in 0..n as u64 {
            s.insert(k * 2, k);
        }
        let hit = (n as u64 - 1) * 2;
        let miss = hit + 1;
        out.push(bench(&format!("traverse/list_contains_{n}"), || {
            assert!(s.contains(black_box(&hit)));
            assert!(!s.contains(black_box(&miss)));
        }));
    }

    {
        let m: LfHashMap<u64, u64> = LfHashMap::with_buckets(64);
        for k in 0..1024u64 {
            m.insert(k * 2, k);
        }
        let (hit, miss) = (2046u64, 2047u64);
        out.push(bench("traverse/hashmap_get", || {
            assert!(m.get(black_box(&hit)).is_some());
            assert!(m.get(black_box(&miss)).is_none());
        }));
    }

    {
        // Keyed insert+remove against a populated map: the locate phase of
        // both operations traverses the resident bucket chain.
        let m: LfHashMap<u64, u64> = LfHashMap::with_buckets(64);
        for k in 0..1024u64 {
            m.insert(k * 2, k);
        }
        let key = 2049u64; // odd: never resident between iterations
        out.push(bench("ops/keyed_insert_remove", || {
            assert!(m.insert(black_box(key), 1));
            assert_eq!(m.remove(black_box(&key)), Some(1));
        }));
    }

    out
}

/// Experiment SKIP (tracked since PR 9): skip-list latencies through the
/// shared traversal kernel. `skiplist_get` is the logarithmic cousin of
/// `traverse/list_contains_1024` (same 1024 resident even keys, same
/// full-height hit + adjacent miss); `skiplist_insert_remove` exercises a
/// full tower build + freeze + sweep per iteration; `skiplist_range`
/// clones a 64-key window through the level-0 walk.
pub fn skiplist() -> Vec<Measurement> {
    const ITEMS: u64 = 1024;
    let mut out = Vec::new();
    let m: LfSkipMap<u64, u64> = LfSkipMap::new();
    for k in 0..ITEMS {
        m.insert(k * 2, k);
    }
    let hit = (ITEMS - 1) * 2;
    let miss = hit + 1;
    out.push(bench("skiplist_get", || {
        assert!(m.get(black_box(&hit)).is_some());
        assert!(m.get(black_box(&miss)).is_none());
    }));
    let key = ITEMS * 2 + 1; // odd: never resident between iterations
    out.push(bench("skiplist_insert_remove", || {
        assert!(m.insert(black_box(key), 1));
        assert_eq!(m.remove(black_box(&key)), Some(1));
    }));
    let (lo, hi) = (900u64, 1028u64); // 64 resident even keys
    out.push(bench("skiplist_range", || {
        assert_eq!(m.range(black_box(lo)..black_box(hi)).len(), 64);
    }));
    out
}

/// Experiment HASH (tracked since PR 5): hash-map latency across load
/// factors. Each map is built with a bucket *hint* of `items / lf` — under
/// the fixed-bucket baseline that pins the chain length to `lf`; under the
/// split-ordered table (PR 5) the directory doubles as the items arrive
/// and the chain length stays bounded by the resize threshold regardless
/// of the hint. Flat medians across `lf1`/`lf8`/`lf64` are the acceptance
/// signal of the incremental resize.
pub fn hashmap_scaling() -> Vec<Measurement> {
    const ITEMS: u64 = 1024;
    let mut out = Vec::new();
    for lf in [1usize, 8, 64] {
        let m: LfHashMap<u64, u64> = LfHashMap::with_buckets(ITEMS as usize / lf);
        for k in 0..ITEMS {
            m.insert(k * 2, k);
        }
        // Hit the largest resident key and miss its odd neighbour, as in
        // `traverse/hashmap_get`: both lookups walk a full chain.
        let hit = (ITEMS - 1) * 2;
        let miss = hit + 1;
        out.push(bench(&format!("hashmap_get/lf{lf}"), || {
            assert!(m.get(black_box(&hit)).is_some());
            assert!(m.get(black_box(&miss)).is_none());
        }));
        let key = ITEMS * 2 + 1; // odd: never resident between iterations
        out.push(bench(&format!("hashmap_insert_remove/lf{lf}"), || {
            assert!(m.insert(black_box(key), 1));
            assert_eq!(m.remove(black_box(&key)), Some(1));
        }));
    }
    out.push(hashmap_growth());
    out
}

/// The growth workload: amortized per-insert cost of filling a map that
/// was constructed with a 64-bucket hint with 100k keys. The fixed-bucket
/// baseline degrades quadratically (every insert walks its ever-longer
/// chain); the split-ordered table doubles its directory as it fills and
/// stays near-flat. Measured manually (median of whole-fill rounds) —
/// the harness's batch calibration cannot express an operation whose cost
/// depends on how many came before it.
pub fn hashmap_growth() -> Measurement {
    const KEYS: u64 = 100_000;
    const ROUNDS: usize = 7;
    let mut ns: Vec<f64> = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let m: LfHashMap<u64, u64> = LfHashMap::with_buckets(64);
        let t = std::time::Instant::now();
        for k in 0..KEYS {
            assert!(m.insert(k, k));
        }
        ns.push(t.elapsed().as_nanos() as f64 / KEYS as f64);
        drop(m);
        // Drain the 100k retired nodes so teardown from one round cannot
        // bleed scan work into the next round's timed region.
        lfc_hazard::flush();
    }
    ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = if ns.len() % 2 == 1 {
        ns[ns.len() / 2]
    } else {
        (ns[ns.len() / 2 - 1] + ns[ns.len() / 2]) / 2.0
    };
    Measurement {
        name: "hashmap_growth/insert_100k_from_64".to_string(),
        median_ns: median,
        min_ns: ns[0],
        max_ns: ns[ns.len() - 1],
    }
}

/// Contended composed move: two threads moving opposite directions between
/// a shared pair of stacks (the paper's hardest case, §7).
pub fn move_contended() -> Measurement {
    bench_custom("move/contended_2thr_stack_stack", |iters| {
        let x: TreiberStack<u64> = TreiberStack::new();
        let y: TreiberStack<u64> = TreiberStack::new();
        for i in 0..64 {
            x.push(i);
        }
        let stop = AtomicBool::new(false);
        std::thread::scope(|sc| {
            let (xr, yr, stopr) = (&x, &y, &stop);
            sc.spawn(move || {
                while !stopr.load(Ordering::Relaxed) {
                    let _ = move_one(yr, xr);
                }
            });
            let start = std::time::Instant::now();
            for _ in 0..iters {
                black_box(move_one(&x, &y));
            }
            let e = start.elapsed();
            stop.store(true, Ordering::Relaxed);
            e
        })
    })
}
