//! Combined-adversary chaos campaign (PR 10 acceptance): kill + stall +
//! OOM schedules armed **simultaneously** against the sharded ledger
//! service under Zipfian traffic, with a dedicated auditor thread sweeping
//! for exact token conservation campaign-long.
//!
//! Asserts the acceptance criteria in-process:
//! * every audit sweep balanced exactly (conservation under live chaos),
//! * every killed thread adopted, no corpses left,
//! * abandonment leaks within the documented per-corpse bound,
//! * retired-bytes high-water within the stall budget (+ scan slack),
//! * the degradation ladder engaged (refusals counted, never a deadlock)
//!   and walked itself back to `Normal` — recovery time measured.
//!
//! Ignored by default (≈10 s wall clock, wants the whole machine); CI's
//! `nightly-chaos` job runs `cargo test --release -- --ignored chaos` and
//! archives the `chaos-summary:` line plus the `reproduce chaos` JSON.

use lfc_bench::chaos::{run_chaos, ChaosCfg, RETIRED_HWM_BOUND};
use lfc_ledger::ServiceState;

#[test]
#[ignore = "chaos campaign: run with --release -- --ignored chaos"]
fn chaos_combined_adversaries_conserve_and_recover() {
    let cfg = ChaosCfg::full();
    let r = run_chaos(&cfg);

    // The artifact line the nightly job greps out of the test log.
    println!(
        "chaos-summary: ops={} ok={} shed={} overloaded={} audits={}/{} abandoned={} adopted={} \
         ejections={} p99_normal={}ns p99_degraded={}ns retired_hwm={} leaked={}<={} recovery={:?}ms final={}",
        r.ops,
        r.ok,
        r.shed,
        r.overloaded,
        r.audits_conserved,
        r.audits,
        r.abandoned,
        r.adopted,
        r.ejections,
        r.p99_normal_ns,
        r.p99_degraded_ns,
        r.retired_hwm,
        r.leaked_blocks,
        r.leak_bound_blocks,
        r.recovery_ms,
        r.final_state,
    );
    for (at, from, to) in &r.transitions {
        println!("chaos-transition: at={at}ms {from} -> {to}");
    }

    assert!(r.audits > 0, "the auditor must actually sweep");
    assert_eq!(
        r.audits_conserved, r.audits,
        "every sweep must balance exactly under live chaos"
    );
    assert!(
        r.abandoned > 0,
        "the kill schedule must actually reap victims"
    );
    assert!(
        r.adopted >= r.abandoned,
        "every abandonment adopted ({} of {})",
        r.adopted,
        r.abandoned
    );
    assert_eq!(r.corpses_left, 0, "no corpse left behind");
    assert!(
        r.leaked_blocks <= r.leak_bound_blocks,
        "leaks within the documented bound: {} > {}",
        r.leaked_blocks,
        r.leak_bound_blocks
    );
    assert!(
        r.retired_hwm <= RETIRED_HWM_BOUND,
        "garbage high-water within the stall budget: {} > {}",
        r.retired_hwm,
        RETIRED_HWM_BOUND
    );
    assert!(
        r.shed + r.overloaded > 0,
        "the ladder must have engaged (counted refusals, not luck)"
    );
    assert_eq!(
        r.final_state,
        ServiceState::Normal,
        "the service must heal itself"
    );
    assert!(
        r.recovery_ms.is_some(),
        "the transition log must measure the recovery window"
    );
}
