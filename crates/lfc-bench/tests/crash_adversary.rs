//! Crash adversary (PR 8 acceptance): a kill campaign abandons at least
//! eight threads at armed protocol kill sites — after announcement, after
//! descriptor publication, after a batched submit — while shielded
//! survivors keep churning the same objects. The claims:
//!
//! 1. every abandoned in-flight operation is completed by survivors
//!    (read-helping or corpse adoption), so token **conservation** holds
//!    exactly at the end;
//! 2. every corpse is adopted — id, hazard bank and epoch slot come back;
//! 3. the net leak is bounded by the documented per-abandonment cost:
//!    at most one leaked descriptor block (helpers may still hold it)
//!    plus the nodes the dead thread had allocated but not yet published,
//!    ≤ [`LEAK_BLOCKS_PER_ABANDON`] allocator blocks each.
//!
//! Ignored by default (multi-second wall clock); CI's nightly
//! crash-adversary job runs `cargo test --release -- --ignored crash` and
//! archives the `crash-series:` / `crash-summary:` lines this test prints.

use lfc_core::move_one;
use lfc_dcas::adopt_dead_threads;
use lfc_runtime::fault;
use lfc_structures::{MsQueue, TreiberStack};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

const VICTIMS: usize = 10;
const SURVIVORS: usize = 2;
const TOKENS: u64 = 256;
/// Failsafe so a victim that somehow dodges every armed site still
/// terminates; in practice the campaign reaps all of them in well under
/// a second.
const MAX_VICTIM_OPS: usize = 4_000_000;
const SAMPLE_EVERY: Duration = Duration::from_millis(5);

/// Documented leak bound, in allocator blocks per abandonment: 1 leaked
/// descriptor (≤ 512 B, deliberately never recycled — a helper may still
/// hold it) + up to 2 nodes the dead thread allocated but had not
/// published. See DESIGN.md "Fault model".
const LEAK_BLOCKS_PER_ABANDON: usize = 3;
/// Slack for caches the baseline/end snapshots cannot see identically
/// (per-thread descriptor pools and allocator magazines of threads still
/// alive at the end snapshot).
const LEAK_SLACK_BLOCKS: usize = 64;

#[test]
#[ignore = "crash adversary: run with --release -- --ignored crash"]
fn crash_abandoned_threads_are_adopted_and_conserved() {
    fault::install_quiet_abandon_hook();
    fault::disarm();
    // The measuring thread must never be reaped by its own campaign.
    fault::shield_thread(true);
    let abandoned0 = fault::abandoned_total();
    let adopted0 = fault::adopted_total();
    let helped0 = lfc_dcas::helped_completions();

    let q: MsQueue<u64> = MsQueue::new();
    let s: TreiberStack<u64> = TreiberStack::new();
    for i in 0..TOKENS {
        q.enqueue(i);
    }
    for _ in 0..4 {
        lfc_hazard::flush();
    }
    let baseline_blocks = lfc_alloc::outstanding();

    // Kill sites at every helping boundary a thread can die beyond:
    // announced-not-published, published-not-decided (the worst torn
    // state), a batched request handed to the group commit, and a CASN
    // (group/fan-out commit) announcement. EveryNth counters are global
    // and only unshielded threads advance them, so the victims reap
    // themselves at a steady rate while survivors run for free.
    fault::arm_site("dcas.announced", fault::Schedule::EveryNth(701));
    fault::arm_site("dcas.published", fault::Schedule::EveryNth(463));
    fault::arm_site("batch.submitted", fault::Schedule::EveryNth(389));
    fault::arm_site("kcas.announced", fault::Schedule::EveryNth(557));

    let stop = AtomicBool::new(false);
    let mut series: Vec<(u128, usize, usize, usize)> = Vec::new();
    let mut reaped = 0usize;

    std::thread::scope(|sc| {
        for _ in 0..SURVIVORS {
            let (q, s, stop) = (&q, &s, &stop);
            sc.spawn(move || {
                fault::shield_thread(true);
                let g = lfc_hazard::pin();
                while !stop.load(Ordering::Acquire) {
                    let _ = move_one(q, s);
                    let _ = move_one(s, q);
                    adopt_dead_threads(&g);
                }
                adopt_dead_threads(&g);
            });
        }
        let victims: Vec<_> = (0..VICTIMS)
            .map(|_| {
                let (q, s) = (&q, &s);
                sc.spawn(move || {
                    fault::abandonment_scope(|| {
                        for _ in 0..MAX_VICTIM_OPS {
                            let _ = move_one(q, s);
                            let _ = move_one(s, q);
                        }
                    })
                    .is_none()
                })
            })
            .collect();

        // Sample the leak/corpse series while the campaign runs.
        let t0 = Instant::now();
        while victims.iter().any(|v| !v.is_finished()) {
            series.push((
                t0.elapsed().as_millis(),
                lfc_alloc::outstanding(),
                fault::corpse_count(),
                fault::abandoned_total() - abandoned0,
            ));
            std::thread::sleep(SAMPLE_EVERY);
        }
        for v in victims {
            if v.join().expect("victim threads never panic past the scope") {
                reaped += 1;
            }
        }
        // Survivors keep adopting until the registry is clean.
        let t1 = Instant::now();
        while fault::corpse_count() > 0 && t1.elapsed() < Duration::from_secs(10) {
            std::thread::sleep(Duration::from_millis(1));
        }
        stop.store(true, Ordering::Release);
    });
    // Snapshot before disarm: disarm clears the whole registry.
    let fault_counters = fault::counters();
    fault::disarm();

    assert!(
        reaped >= 8,
        "the campaign must abandon at least 8 threads, reaped only {reaped}"
    );
    assert_eq!(
        fault::corpse_count(),
        0,
        "survivors must adopt every corpse"
    );
    let abandoned = fault::abandoned_total() - abandoned0;
    assert_eq!(abandoned, reaped, "every reaped victim became a corpse");
    assert!(
        fault::adopted_total() - adopted0 >= abandoned,
        "every corpse adoption must be accounted"
    );
    assert!(
        lfc_dcas::helped_completions() > helped0,
        "survivor completions must flow through the helping path"
    );

    // Conservation: every token exists exactly once across both objects —
    // the abandoned half-moves were completed (not duplicated, not lost)
    // by survivors.
    let mut all: Vec<u64> = Vec::with_capacity(TOKENS as usize);
    while let Some(v) = q.dequeue() {
        all.push(v);
    }
    while let Some(v) = s.pop() {
        all.push(v);
    }
    all.sort_unstable();
    assert_eq!(
        all,
        (0..TOKENS).collect::<Vec<u64>>(),
        "conservation violated after the kill campaign"
    );

    // Leak bound: drain the hazard domain, then compare outstanding
    // allocator blocks against the documented per-abandonment bound. The
    // structures are empty now while the baseline held TOKENS nodes, so
    // the subtraction is already generous.
    for _ in 0..256 {
        lfc_hazard::flush();
        if lfc_hazard::pending_retired() == 0 {
            break;
        }
        std::thread::yield_now();
    }
    let end_blocks = lfc_alloc::outstanding();
    let leaked = end_blocks.saturating_sub(baseline_blocks);
    let bound = abandoned * LEAK_BLOCKS_PER_ABANDON + LEAK_SLACK_BLOCKS;

    for (ms, blocks, corpses, dead) in &series {
        println!(
            "crash-series: t_ms={ms} outstanding_blocks={blocks} corpses={corpses} abandoned={dead}"
        );
    }
    for (site, checks, fired) in fault_counters {
        println!("crash-fault: site={site} checks={checks} fired={fired}");
    }
    println!(
        "crash-summary: abandoned={abandoned} adopted={} helped_completions={} \
         baseline_blocks={baseline_blocks} end_blocks={end_blocks} leaked_blocks={leaked} bound={bound}",
        fault::adopted_total() - adopted0,
        lfc_dcas::helped_completions() - helped0,
    );
    assert!(
        leaked <= bound,
        "leaked {leaked} blocks exceeds the documented bound {bound} \
         ({abandoned} abandonments x {LEAK_BLOCKS_PER_ABANDON} + {LEAK_SLACK_BLOCKS} slack)"
    );
}
