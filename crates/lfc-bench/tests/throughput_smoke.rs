//! Smoke-level run of the PR 7 throughput harness: a deliberately
//! oversubscribed closed-loop workload (threads = cores + 1) must complete
//! on any host, starve no worker, and — the PR 6 regression net — keep the
//! reclamation high-water mark sampled during the run under the installed
//! stall-policy byte budget: a preempted reader must never let garbage
//! accumulate past the point where the ejection ladder takes over.

use lfc_bench::throughput::{cores, run_throughput, Skew, TpCfg, TpWorkload};

#[test]
fn oversubscribed_run_completes_within_garbage_budget() {
    let threads = cores() + 1;
    for adaptive in [false, true] {
        let r = run_throughput(&TpCfg {
            workload: TpWorkload::MoveHeavy,
            threads,
            skew: Skew::Zipfian,
            duration_ms: 80,
            key_space: 32,
            adaptive,
            seed: 0x5E0C,
        });
        assert!(r.oversubscribed, "threads = cores + 1 must oversubscribe");
        assert!(r.ops > 0, "{} did no work", r.mode);
        assert!(
            r.min_thread_ops > 0,
            "{}: a worker was starved outright",
            r.mode
        );
        assert!(r.p50_ns <= r.p99_ns && r.p99_ns <= r.p999_ns);
        let budget = lfc_hazard::stall_policy().max_retired_bytes as u64;
        assert!(
            r.retired_hwm < budget,
            "{}: retired high-water {} exceeded the stall-policy budget {}",
            r.mode,
            r.retired_hwm,
            budget
        );
    }
}

#[test]
fn stack_workload_runs_with_and_without_elimination() {
    for adaptive in [false, true] {
        let r = run_throughput(&TpCfg {
            workload: TpWorkload::StackPushPop,
            threads: cores() + 1,
            skew: Skew::Uniform,
            duration_ms: 50,
            key_space: 1,
            adaptive,
            seed: 0x57AC,
        });
        assert!(r.ops > 0 && r.min_thread_ops > 0, "{} starved", r.mode);
    }
}
