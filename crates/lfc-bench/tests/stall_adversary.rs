//! Forced-stall adversary (PR 6 acceptance): one reader parks *forever*
//! inside an operation epoch while writers churn retire-heavy operations.
//! Without the ejection ladder every retired node tags at or above the
//! parked reader's entry era and is retained — garbage grows with the
//! churn rate (hundreds of MiB/s in release). With the ladder the reader
//! is ejected and zombified once the byte budget is exceeded, divertable
//! garbage is partitioned out, and the retired set stays bounded.
//!
//! Ignored by default (multi-second wall clock); CI's nightly stall job
//! runs `cargo test --release -- --ignored stall` and archives the
//! `stall-series:` sample lines this test prints.

use lfc_hazard::{configure_stall_policy, ejection_stats, retired_bytes, StallPolicy};
use lfc_structures::TreiberStack;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

const WRITERS: usize = 4;
const CHURN_SECS: u64 = 2;
const SAMPLE_EVERY: Duration = Duration::from_millis(10);

/// Budget: eject once a parked reader pins more than 1 MiB / 16Ki records.
const POLICY: StallPolicy = StallPolicy {
    stall_eras: 16,
    grace_eras: 16,
    max_retired_bytes: 1 << 20,
    max_retired_count: 16 * 1024,
};

/// The asserted ceiling on the observed retired-set high-water mark. Slack
/// over the policy budget covers scan latency (garbage keeps arriving
/// between the budget being crossed and the zombie partition freeing it)
/// — but it is orders of magnitude below the unbounded-growth rate.
const BOUND_BYTES: usize = 64 << 20;

#[test]
#[ignore = "stall adversary: run with --release -- --ignored stall"]
fn stall_parked_reader_keeps_garbage_bounded() {
    configure_stall_policy(POLICY);
    let stop = AtomicBool::new(false);
    let parked = AtomicBool::new(false);

    let mut series: Vec<(u128, usize)> = Vec::new();
    let (ej0, z0) = ejection_stats();
    let d0 = lfc_hazard::diverted_count();

    std::thread::scope(|sc| {
        // The stalled reader: enters an operation epoch "mid-traversal"
        // and never comes back until the test ends.
        sc.spawn(|| {
            let mut g = lfc_hazard::pin_op();
            parked.store(true, Ordering::SeqCst);
            while !stop.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
            // On resume the structure idiom restarts the operation; by
            // then the scans must have ejected this slot.
            assert!(g.ejected(), "a stalled-past-budget reader must be marked");
            assert!(g.repin_if_ejected(), "resumed reader restarts cleanly");
        });

        while !parked.load(Ordering::SeqCst) {
            std::hint::spin_loop();
        }

        // Retire-heavy churn: every pop retires a node the parked reader's
        // era would pin forever.
        for w in 0..WRITERS {
            let stop = &stop;
            sc.spawn(move || {
                let s: TreiberStack<u64> = TreiberStack::new();
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..64 {
                        s.push(w as u64 ^ i);
                        i = i.wrapping_add(1);
                    }
                    for _ in 0..64 {
                        let _ = s.pop();
                    }
                }
            });
        }

        // Sample the retired-set size for the whole churn window.
        let t0 = Instant::now();
        while t0.elapsed() < Duration::from_secs(CHURN_SECS) {
            series.push((t0.elapsed().as_millis(), retired_bytes()));
            std::thread::sleep(SAMPLE_EVERY);
        }
        stop.store(true, Ordering::SeqCst);
    });

    configure_stall_policy(StallPolicy::DEFAULT);

    // CI artifact: the full series, one line per sample.
    for (ms, bytes) in &series {
        println!("stall-series: t_ms={ms} retired_bytes={bytes}");
    }
    let peak = series.iter().map(|&(_, b)| b).max().unwrap_or(0);
    let (ej1, z1) = ejection_stats();
    let d1 = lfc_hazard::diverted_count();
    println!(
        "stall-summary: peak_retired_bytes={peak} bound={BOUND_BYTES} \
         ejections={} zombies={} diverted={}",
        ej1 - ej0,
        z1 - z0,
        d1 - d0
    );

    assert!(ej1 > ej0, "the parked reader must have been ejected");
    assert!(z1 > z0, "the ejected reader must have been zombie-promoted");
    assert!(
        d1 > d0,
        "zombie-pinned node garbage must have been diverted"
    );
    assert!(
        peak <= BOUND_BYTES,
        "retired-set high-water {peak} exceeded the stall bound {BOUND_BYTES}"
    );
}
