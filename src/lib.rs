//! # lockfree-compose
//!
//! A lock-free methodology for composing concurrent data objects, after
//! Cederman & Tsigas, *Supporting Lock-Free Composition of Concurrent Data
//! Objects* (PPoPP 2010).
//!
//! The crate provides atomic **move** operations between independently
//! designed lock-free objects (queues, stacks, ordered sets, hash maps) by
//! unifying the linearization points of the source's `remove` and the
//! target's `insert` with a software double-word compare-and-swap.
//!
//! ```
//! use lockfree_compose::{move_one, MoveOutcome, MsQueue, TreiberStack};
//!
//! let queue: MsQueue<u64> = MsQueue::new();
//! let stack: TreiberStack<u64> = TreiberStack::new();
//! queue.enqueue(42);
//!
//! // Atomically dequeue from the queue and push onto the stack: no
//! // concurrent observer can see the element absent from both.
//! assert_eq!(move_one(&queue, &stack), MoveOutcome::Moved);
//! assert_eq!(stack.pop(), Some(42));
//! assert_eq!(move_one(&queue, &stack), MoveOutcome::SourceEmpty);
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! reproduction of the paper's evaluation.

#![warn(missing_docs)]

pub use lfc_core::{
    move_keyed, move_keyed_to_all, move_keyed_to_unkeyed, move_one, move_to_all, swap,
    try_move_keyed, try_move_keyed_to_all, try_move_keyed_to_unkeyed, try_move_one,
    try_move_to_all, try_swap, Composition, DynMoveTarget, InsertCtx, InsertOutcome,
    KeyedMoveSource, KeyedMoveTarget, LinPoint, MoveOutcome, MoveSource, MoveTarget, NormalCas,
    RemoveCtx, RemoveOutcome, ScasResult, SwapOutcome, MAX_ENTRIES, MAX_TARGETS,
};
pub use lfc_core::{BatchGate, BatchOp, MoveKeyedOp, MoveKeyedToAllOp, MoveOneOp, SwapOp};
/// The composition-engine builder module (sources, stages, [`Composition`]).
pub mod compose {
    pub use lfc_core::compose::{
        Commit, Composition, InsertStage, KeyedInsertStage, KeyedSource, Source, Stages,
    };
}
/// The contention-adaptive batched front-end (claim-pattern group commit):
/// result-word codecs and engagement counters.
pub mod batch {
    pub use lfc_core::batch::{counters, decode_move, decode_swap, encode_move, encode_swap};
}
pub use lfc_dcas::{DAtomic, DcasResult};
pub use lfc_runtime::{Backoff, BackoffCfg, TtasLock};
pub use lfc_structures::*;

/// Re-export of the hazard-pointer domain (diagnostics and advanced use).
pub mod hazard {
    pub use lfc_hazard::{bank_is_clear, flush, pending_retired, pin, stats, Guard};
}

/// Re-export of the pooling allocator statistics.
pub mod alloc_stats {
    pub use lfc_alloc::{outstanding, stats, AllocError, AllocStats};
}

/// Fault-injection subsystem (testing/robustness): named failure sites,
/// injected thread death, and the corpse registry (see
/// `lfc_runtime::fault`).
pub mod fault {
    pub use lfc_runtime::fault::{
        abandon, abandoned_total, abandonment_scope, adopted_total, arm_all, arm_script, arm_site,
        corpse_count, corpses, counters, disarm, disarm_site, fired_total,
        install_quiet_abandon_hook, is_corpse, shield_thread, thread_is_abandoning, Schedule,
    };
}

/// Dead-thread adoption: survivors complete and reclaim operations whose
/// owner died mid-flight (see `lfc_dcas::adopt`).
pub mod adopt {
    pub use lfc_dcas::adopt::{adopt_dead_threads, announced, helped_completions};
}

/// The chaos-hardened sharded ledger service built on composed operations
/// (see `lfc_ledger`): degradation ladder, quiesce protocol, conservation
/// audits.
pub mod ledger {
    pub use lfc_ledger::{
        AuditReport, Health, HealthCfg, HealthStats, Ledger, LedgerCfg, LedgerError, ServiceState,
        SettleOutcome, TendReport, Transition, NOTICE_BASE,
    };
}

/// Linearizability checking toolkit (used by the test-suite; public because
/// it is generally useful for validating composed histories).
pub mod linear {
    pub use lfc_linear::{
        check_linearizable, render_history, CheckResult, Cont, Entry, KeyedMoveResult, KeyedPairOp,
        KeyedPairSpec, MapOp, MapSpec, PairOp, PairSpec, QueueOp, QueueSpec, Recorder, SlotOp,
        SlotSpec, Spec, StackOp, StackSpec, SwapResult, TrioOp, TrioSpec,
    };
}
